package invariant

import (
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/job"
	"repro/internal/obs/event"
	"repro/internal/timeslot"
)

// --- breaker-legality ---------------------------------------------------

func transitionEvent(region string, state fleet.BreakerState, cause string, vec []float64) event.Event {
	return event.Event{Kind: event.BreakerTransition, Slot: 100, Region: region,
		Subject: state.String(), Cause: cause, Value: float64(state), Vec: vec}
}

func healthVec(blockedStreak, score float64) []float64 {
	return []float64{0.1, 0, 0, blockedStreak, 0, score}
}

func breakerViolations(t *testing.T, evs ...event.Event) []Violation {
	t.Helper()
	c := newBreakerChecker(Params{TripScore: 0.5, OutageTrip: 3})
	for _, ev := range evs {
		c.Observe(ev)
	}
	c.Finish(nil)
	return c.Violations()
}

func TestBreakerCheckerLegalCycle(t *testing.T) {
	vs := breakerViolations(t,
		transitionEvent("r", fleet.Open, "health score 0.6123 >= 0.5000", healthVec(0, 0.6123)),
		transitionEvent("r", fleet.HalfOpen, "quarantine-elapsed", healthVec(0, 0.1)),
		transitionEvent("r", fleet.Closed, "probe-survived", healthVec(0, 0.05)),
		transitionEvent("r", fleet.Open, "capacity outage: 3 consecutive blocked slots", healthVec(3, 0.2)),
		transitionEvent("r", fleet.HalfOpen, "quarantine-elapsed", healthVec(0, 0)),
		transitionEvent("r", fleet.Open, "breaker-open", healthVec(0, 0)),
	)
	if len(vs) != 0 {
		t.Errorf("legal cycle flagged: %v", vs)
	}
}

func TestBreakerCheckerIllegalEdges(t *testing.T) {
	cases := []struct {
		name string
		evs  []event.Event
		want string
	}{
		{"closed-to-halfopen",
			[]event.Event{transitionEvent("r", fleet.HalfOpen, "quarantine-elapsed", healthVec(0, 0))},
			"illegal breaker transition"},
		{"open-to-closed",
			[]event.Event{
				transitionEvent("r", fleet.Open, "breaker-open", healthVec(0, 0)),
				transitionEvent("r", fleet.Closed, "probe-survived", healthVec(0, 0)),
			},
			"illegal breaker transition"},
		{"soft-trip-below-threshold",
			[]event.Event{transitionEvent("r", fleet.Open, "health score 0.3000 >= 0.5000", healthVec(0, 0.3))},
			"below TripScore"},
		{"capacity-trip-short-streak",
			[]event.Event{transitionEvent("r", fleet.Open, "capacity outage: 1 consecutive blocked slots", healthVec(1, 0))},
			"below OutageTrip"},
		{"unknown-cause",
			[]event.Event{transitionEvent("r", fleet.Open, "gremlins", healthVec(0, 1))},
			"unrecognized cause"},
		{"short-vector",
			[]event.Event{transitionEvent("r", fleet.Open, "breaker-open", []float64{1, 2})},
			"health vector has 2 terms"},
		{"subject-mismatch", []event.Event{
			{Kind: event.BreakerTransition, Slot: 1, Region: "r", Subject: "closed",
				Cause: "breaker-open", Value: float64(fleet.Open), Vec: healthVec(0, 0)},
		}, "disagrees with encoded state"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vs := breakerViolations(t, tc.evs...)
			if len(vs) == 0 {
				t.Fatalf("no violation for %s", tc.name)
			}
			found := false
			for _, v := range vs {
				if strings.Contains(v.Detail, tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("violations %v lack %q", vs, tc.want)
			}
		})
	}
}

// TestBreakerCheckerPerRegionState: two regions' machines are
// independent — region b starting with a quarantine release is
// illegal even while region a cycles legally.
func TestBreakerCheckerPerRegionState(t *testing.T) {
	vs := breakerViolations(t,
		transitionEvent("a", fleet.Open, "breaker-open", healthVec(0, 0)),
		transitionEvent("b", fleet.HalfOpen, "quarantine-elapsed", healthVec(0, 0)),
	)
	if len(vs) != 1 || vs[0].Region != "b" {
		t.Errorf("want exactly one violation on region b, got %v", vs)
	}
}

// --- checkpoint-monotonicity --------------------------------------------

func checkpointViolations(t *testing.T, evs ...event.Event) []Violation {
	t.Helper()
	c := newCheckpointChecker()
	for _, ev := range evs {
		c.Observe(ev)
	}
	c.Finish(&RunState{
		Spec: job.Spec{ID: "j", Exec: 1},
		Params: Params{
			MigrationPenalty: timeslot.Seconds(60),
			Recovery:         timeslot.Seconds(30),
		},
	})
	return c.Violations()
}

func exportEvent(slot int, remaining float64) event.Event {
	return event.Event{Kind: event.CheckpointExport, Slot: slot, Job: "j", Value: remaining}
}

func importEvent(slot int, remaining float64) event.Event {
	return event.Event{Kind: event.CheckpointImport, Slot: slot, Job: "j", Value: remaining}
}

func TestCheckpointCheckerLegalMigration(t *testing.T) {
	pen := float64(timeslot.Seconds(60))
	vs := checkpointViolations(t,
		exportEvent(10, 0.6),
		importEvent(11, 0.6+pen),
		exportEvent(30, 0.2),
		importEvent(31, 0.2), // carried forward unchanged (no-progress leg)
	)
	if len(vs) != 0 {
		t.Errorf("legal migration chain flagged: %v", vs)
	}
}

func TestCheckpointCheckerViolations(t *testing.T) {
	pen := float64(timeslot.Seconds(60))
	cases := []struct {
		name string
		evs  []event.Event
		want string
	}{
		{"import-without-export",
			[]event.Event{importEvent(5, 0.5)},
			"no prior durable export"},
		{"import-exceeds-export",
			[]event.Event{exportEvent(10, 0.6), importEvent(11, 0.4)},
			"more progress than the last durable export"},
		{"import-regresses",
			[]event.Event{exportEvent(10, 0.6), importEvent(11, 0.6 + pen + 0.1)},
			"regressed past the last durable export"},
		{"export-exceeds-allowance",
			[]event.Event{exportEvent(10, 1.5)},
			"exceeds the"},
		{"second-export-exceeds-allowance",
			[]event.Event{exportEvent(10, 0.5), importEvent(11, 0.5), exportEvent(20, 0.9)},
			"exceeds the"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vs := checkpointViolations(t, tc.evs...)
			if len(vs) == 0 {
				t.Fatalf("no violation for %s", tc.name)
			}
			if !strings.Contains(vs[0].Detail, tc.want) {
				t.Errorf("violation %v lacks %q", vs[0], tc.want)
			}
		})
	}
}

// TestCheckpointCheckerIgnoresOtherJobs: the escalated on-demand
// job's records must not confuse the persistent job's chain.
func TestCheckpointCheckerIgnoresOtherJobs(t *testing.T) {
	other := event.Event{Kind: event.CheckpointImport, Slot: 5, Job: "j-escalated", Value: 0.9}
	vs := checkpointViolations(t, other)
	if len(vs) != 0 {
		t.Errorf("foreign job's events flagged: %v", vs)
	}
}
