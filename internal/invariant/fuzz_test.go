package invariant

import (
	"testing"

	"repro/internal/chaos"
)

// FuzzFaultSchedule drives the shrinker with fuzz-derived schedules
// and fuzz-derived violation predicates, asserting its contract on
// every input: shrinking terminates inside its budget, the result
// still reproduces the violation, never grows, and — at an
// untruncated fixpoint — is 1-minimal.
//
// The predicate family is "the schedule contains at least N faults of
// kind K": deterministic, cheap, and subset-monotone enough that the
// minimal reproducer is known exactly (N faults of kind K), which
// pins the shrinker's answer, not just its invariants.
func FuzzFaultSchedule(f *testing.F) {
	f.Add([]byte{0, 1, 5, 10, 20, 30})
	f.Add([]byte{3, 2, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4})
	f.Add([]byte{5, 3, 255, 254, 253, 252, 251, 250, 249, 248})
	f.Add([]byte{1, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		kind := chaos.FaultKind(data[0] % 6)
		need := 1 + int(data[1]%3)
		var sched chaos.Schedule
		for i := 2; i+1 < len(data) && len(sched) < 8; i += 2 {
			sched = append(sched, chaos.FaultAt{
				Slot:  int(data[i]),
				Kind:  chaos.FaultKind(data[i+1] % 6),
				Slots: 1 + int(data[i+1]%5),
			})
		}
		violates := func(s chaos.Schedule) bool { return countKind(s, kind) >= need }
		if !violates(sched) {
			return // shrinking only minimizes violating inputs
		}

		res := Shrink(sched, 0, violates, 10000)

		if !violates(res.Schedule) {
			t.Fatalf("shrunk schedule no longer violates: %v", res.Schedule)
		}
		if len(res.Schedule) > len(sched) {
			t.Fatalf("shrinking grew the schedule: %d -> %d", len(sched), len(res.Schedule))
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("shrunk schedule invalid: %v", err)
		}
		if res.Truncated {
			return // budget exhausted: only the safety properties apply
		}
		if len(res.Schedule) != need {
			t.Fatalf("fixpoint has %d faults, the known minimum is %d (kind %v)",
				len(res.Schedule), need, kind)
		}
		for i := range res.Schedule {
			cand := append(append(chaos.Schedule{}, res.Schedule[:i]...), res.Schedule[i+1:]...)
			if violates(cand) {
				t.Fatalf("not 1-minimal: dropping fault %d of %v still violates", i, res.Schedule)
			}
		}
	})
}
