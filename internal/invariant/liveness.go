package invariant

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/obs/event"
)

// livenessChecker verifies the Prop. 5 / Eq. 14 completion guarantee
// end to end: the persistent job finishes (escalation to on-demand is
// the §3.2 playbook, not a failure), every accepted bid terminates —
// no spot request or instance survives the run except the leaks the
// fleet report explicitly excuses — and the event stream agrees with
// the simulator about how many times each request was out-bid.
type livenessChecker struct {
	// outbids counts OutBid events per request, keyed region/requestID
	// because request IDs ("sir-000001") repeat across regions.
	outbids map[string]int
	vs      []Violation
}

func newLivenessChecker() *livenessChecker {
	return &livenessChecker{outbids: make(map[string]int)}
}

func (c *livenessChecker) Name() string            { return "job-liveness" }
func (c *livenessChecker) Violations() []Violation { return c.vs }

func (c *livenessChecker) Observe(ev event.Event) {
	if ev.Kind == event.OutBid {
		// Subject is the instance; Cause carries the owning request ID.
		c.outbids[ev.Region+"/"+ev.Cause]++
	}
}

func (c *livenessChecker) fail(region string, detail string, args ...any) {
	c.vs = append(c.vs, Violation{Checker: c.Name(), Slot: -1, Region: region,
		Detail: fmt.Sprintf(detail, args...)})
}

func (c *livenessChecker) Finish(st *RunState) {
	if !st.Report.Outcome.Completed {
		c.fail("", "job %s did not complete: Eq. 14 admission plus on-demand escalation guarantees completion",
			st.Spec.ID)
	}
	leakedReq := make(map[string]bool, len(st.Report.LeakedRequests))
	for _, id := range st.Report.LeakedRequests {
		leakedReq[id] = true
	}
	leakedInst := make(map[string]bool, len(st.Report.LeakedInstances))
	for _, id := range st.Report.LeakedInstances {
		leakedInst[id] = true
	}
	for _, m := range st.Members {
		reqLeaked := make(map[string]bool) // request IDs excused in this region
		for _, req := range m.Region.Requests() {
			if leakedReq[req.ID] {
				reqLeaked[req.ID] = true
			}
			if (req.State == cloud.Open || req.State == cloud.Active) && !leakedReq[req.ID] {
				c.fail(m.ID, "request %s still %v at end of run and not excused by Report.LeakedRequests",
					req.ID, req.State)
			}
			if got := c.outbids[m.ID+"/"+req.ID]; got != req.Interruptions {
				c.fail(m.ID, "request %s: %d out-bid events recorded but the simulator counts %d interruptions",
					req.ID, got, req.Interruptions)
			}
		}
		for _, inst := range m.Region.Instances() {
			if !inst.Running {
				continue
			}
			excused := leakedInst[inst.ID] || (inst.Spot && reqLeaked[inst.RequestID])
			if !excused {
				c.fail(m.ID, "instance %s (spot=%v, request %s) still running at end of run and not excused",
					inst.ID, inst.Spot, inst.RequestID)
			}
		}
	}
}
