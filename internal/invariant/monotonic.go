package invariant

import (
	"fmt"

	"repro/internal/obs/event"
)

// progressEps absorbs float noise in hours-of-work arithmetic.
const progressEps = 1e-9

// checkpointChecker verifies §3.3's recovery accounting over the
// CheckpointExport / CheckpointImport event stream: durable progress
// is monotone. Remaining work only ever leaves a volume bounded by
// what the job could still owe ("the allowance"), an import never
// carries MORE progress than the last durable export (that state was
// never saved), and never LESS than the export minus the accounted
// migration penalty (progress silently lost in transit).
//
// The allowance starts at the job's full size and is re-derived at
// each event: after an export of remaining v the next leg may owe at
// most v plus the migration penalty plus the recovery time t_r —
// whether or not the import lands (a chaos-failed import emits no
// event but the leg still carries that much work in its spec).
type checkpointChecker struct {
	events []event.Event
	vs     []Violation
}

func newCheckpointChecker() *checkpointChecker { return &checkpointChecker{} }

func (c *checkpointChecker) Name() string            { return "checkpoint-monotonicity" }
func (c *checkpointChecker) Violations() []Violation { return c.vs }

func (c *checkpointChecker) Observe(ev event.Event) {
	if ev.Kind == event.CheckpointExport || ev.Kind == event.CheckpointImport {
		c.events = append(c.events, ev)
	}
}

func (c *checkpointChecker) fail(slot int, detail string, args ...any) {
	// Checkpoint events carry no region; the volume is the scope.
	c.vs = append(c.vs, Violation{Checker: c.Name(), Slot: slot,
		Detail: fmt.Sprintf(detail, args...)})
}

func (c *checkpointChecker) Finish(st *RunState) {
	penalty := float64(st.Params.MigrationPenalty)
	recovery := float64(st.Params.Recovery)
	allowance := float64(st.Spec.Exec)
	lastExport := 0.0
	sawExport := false
	for _, ev := range c.events {
		if ev.Job != st.Spec.ID {
			continue // e.g. the "-escalated" on-demand job
		}
		v := ev.Value // remaining work, in hours
		switch ev.Kind {
		case event.CheckpointExport:
			if v > allowance+progressEps {
				c.fail(ev.Slot, "export of %vh remaining exceeds the %vh the job could still owe",
					v, allowance)
			}
			lastExport = v
			sawExport = true
			allowance = v + penalty + recovery
		case event.CheckpointImport:
			if !sawExport {
				c.fail(ev.Slot, "import of %vh remaining with no prior durable export", v)
			} else {
				if v < lastExport-progressEps {
					c.fail(ev.Slot, "import of %vh remaining carries more progress than the last durable export (%vh)",
						v, lastExport)
				}
				if v > lastExport+penalty+progressEps {
					c.fail(ev.Slot, "import of %vh remaining regressed past the last durable export (%vh) plus the migration penalty (%vh)",
						v, lastExport, penalty)
				}
			}
			allowance = v + recovery
		}
	}
}
