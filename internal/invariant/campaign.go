package invariant

import (
	"fmt"

	"repro/internal/chaos"
)

// ScheduleResult is one schedule's audit outcome, JSON-ready for the
// campaign report. Schedule and Shrunk are copy-pasteable Go literals
// (chaos.Schedule GoString), so a violating campaign prints its own
// minimal reproducer.
type ScheduleResult struct {
	Index      int         `json:"index"`
	Faults     int         `json:"faults"`
	Schedule   string      `json:"schedule"`
	Violations []Violation `json:"violations,omitempty"`
	Err        string      `json:"err,omitempty"`

	// Shrinking fields, set by ShrinkViolating on violating schedules.
	Shrunk          string `json:"shrunk,omitempty"`
	ShrunkFaults    int    `json:"shrunk_faults,omitempty"`
	ShrinkEvals     int    `json:"shrink_evals,omitempty"`
	ShrinkTruncated bool   `json:"shrink_truncated,omitempty"`
}

// Clean reports the schedule ran and passed every checker.
func (r ScheduleResult) Clean() bool { return r.Err == "" && len(r.Violations) == 0 }

// CampaignReport summarizes a fault-schedule campaign. Results keeps
// only the non-clean schedules; the counters cover everything.
type CampaignReport struct {
	Seed      int64            `json:"seed"`
	Schedules int              `json:"schedules"`
	Checkers  []string         `json:"checkers"`
	Replay    bool             `json:"replay"`
	Clean     int              `json:"clean"`
	Violating int              `json:"violating"`
	Errors    int              `json:"errors"`
	Results   []ScheduleResult `json:"results,omitempty"`
}

// RunSchedule audits one schedule: run the scenario, feed the flight
// recorder through the invariant suite, and — when replay is set —
// run it a second time and compare fingerprints.
func RunSchedule(sc Scenario, idx int, sched chaos.Schedule, replay bool) ScheduleResult {
	res := ScheduleResult{Index: idx, Faults: len(sched), Schedule: sched.GoString()}
	first, err := sc.Run(sched)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Violations = NewSuite(first.State.Params).Verify(first.Events, first.State)
	if replay {
		second, err := sc.Run(sched)
		if err != nil {
			res.Err = fmt.Sprintf("replay: %v", err)
			return res
		}
		res.Violations = append(res.Violations, CompareReplay(first, second)...)
	}
	return res
}

// Violates is the shrinking oracle over full schedule audits: true
// when the schedule produces at least one violation (errors do not
// count — an erroring schedule is a different defect than the one
// being minimized).
func Violates(sc Scenario, replay bool) func(chaos.Schedule) bool {
	var idx int
	return func(sched chaos.Schedule) bool {
		idx++
		r := RunSchedule(sc, -idx, sched, replay)
		return r.Err == "" && len(r.Violations) > 0
	}
}

// ShrinkViolating minimizes a violating schedule and records the
// reproducer on the result. budget caps oracle runs (default 200).
func ShrinkViolating(sc Scenario, res *ScheduleResult, sched chaos.Schedule, replay bool, budget int) {
	sr := Shrink(sched, sc.SubmitSlot(), Violates(sc, replay), budget)
	res.Shrunk = sr.Schedule.GoString()
	res.ShrunkFaults = len(sr.Schedule)
	res.ShrinkEvals = sr.Evals
	res.ShrinkTruncated = sr.Truncated
}

// Summarize folds per-schedule results into a campaign report,
// keeping only the non-clean ones.
func Summarize(seed int64, replay bool, results []ScheduleResult) CampaignReport {
	rep := CampaignReport{Seed: seed, Schedules: len(results), Checkers: Checkers(), Replay: replay}
	for _, r := range results {
		switch {
		case r.Err != "":
			rep.Errors++
			rep.Results = append(rep.Results, r)
		case len(r.Violations) > 0:
			rep.Violating++
			rep.Results = append(rep.Results, r)
		default:
			rep.Clean++
		}
	}
	return rep
}
