// Package invariant is the reproduction's resilience verification
// layer: a set of runtime invariant checkers that audit a finished
// fleet run — from its flight-recorder event stream plus the final
// simulator state — and a systematic fault-schedule explorer that
// drives those checkers across enumerated and randomized chaos
// schedules, shrinking any violating schedule to a minimal
// reproducer.
//
// The invariants are the paper's guarantees turned into machine
// checks:
//
//   - Billing conservation (Eq. 9's continuous-limit cost model):
//     every instance's bill equals the sum over its billed slots of
//     that slot's price times the slot length, occupancy intervals
//     are exact, and the fleet bill is the sum of its members' —
//     leaked orphans billed exactly once, never dropped and never
//     double-counted.
//   - Job liveness (Prop. 5 / Eq. 14's guaranteed completion): the
//     persistent strategy finishes the job, and no spot request or
//     instance outlives the run except the explicitly excused leaks
//     the fleet report declares.
//   - Checkpoint monotonicity (§3.3's recovery accounting): durable
//     progress never regresses — an import never carries more
//     progress than the last durable export and never loses more
//     than the accounted migration penalty.
//   - Breaker legality: a member's circuit breaker only walks the
//     documented state machine (DESIGN.md §8), and every transition's
//     recorded cause is consistent with the health vector attached to
//     it.
//   - Replay determinism (the repo-wide seeded-run contract): the
//     same seed and fault schedule reproduce a byte-identical run
//     fingerprint.
package invariant

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/checkpoint"
	"repro/internal/cloud"
	"repro/internal/fleet"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/obs/event"
	"repro/internal/timeslot"
)

// Violation is one invariant breach. The zero Region means the
// violation is not attributable to a single member (e.g. a fleet-wide
// billing mismatch).
type Violation struct {
	// Checker names the invariant that fired.
	Checker string `json:"checker"`
	// Slot is the simulated slot the breach was observed at (-1 when
	// only detectable at end of run).
	Slot int `json:"slot"`
	// Region is the member concerned ("" when fleet-wide).
	Region string `json:"region,omitempty"`
	// Detail says what was expected and what was seen.
	Detail string `json:"detail"`
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	where := v.Region
	if where == "" {
		where = "fleet"
	}
	return fmt.Sprintf("[%s] slot %d %s: %s", v.Checker, v.Slot, where, v.Detail)
}

// Params carries the controller tuning the checkers verify against.
// They mirror fleet.Config's documented defaults; a scenario with a
// custom controller must pass its own values.
type Params struct {
	// TripScore is the health score at which a breaker trips.
	TripScore float64
	// OutageTrip is the consecutive-blocked-slots hard trip.
	OutageTrip int
	// MigrationPenalty is the per-migration work surcharge.
	MigrationPenalty timeslot.Hours
	// Recovery is the job's per-interruption recovery time t_r.
	Recovery timeslot.Hours
}

// MemberState is one fleet member's final simulator state, handed to
// the checkers after the run.
type MemberState struct {
	// ID is the member's fleet ID ("region-0", ...).
	ID string
	// Region is the member's simulated cloud.
	Region *cloud.Region
	// Volume is the member's checkpoint volume.
	Volume *checkpoint.Volume
	// Metrics is the member client's registry.
	Metrics *obs.Registry
	// Injector is the member's armed fault schedule (nil when the
	// schedule targeted no faults here).
	Injector *chaos.ScheduleInjector
}

// RunState is everything a Finish-time checker may inspect: the job
// as submitted, the controller parameters, every member's final
// state, and the fleet report.
type RunState struct {
	Spec    job.Spec
	Params  Params
	Members []MemberState
	Report  fleet.Report
}

// Checker is one streaming invariant: it observes the flight
// recorder's events in emission order, then sees the final state, and
// reports the breaches it found. Checkers are single-use — build a
// fresh Suite per run.
type Checker interface {
	// Name is the stable checker identifier used in Violation.Checker.
	Name() string
	// Observe feeds one event, in Seq order.
	Observe(ev event.Event)
	// Finish hands over the final run state after the last event.
	Finish(st *RunState)
	// Violations returns the breaches found, in detection order.
	Violations() []Violation
}

// Suite bundles the stream/state checkers for one run. The fifth
// invariant — replay determinism — compares two whole runs and lives
// in CompareReplay instead.
type Suite struct {
	checkers []Checker
}

// NewSuite builds a fresh checker suite for one run.
func NewSuite(p Params) *Suite {
	return &Suite{checkers: []Checker{
		newBillingChecker(),
		newLivenessChecker(),
		newCheckpointChecker(),
		newBreakerChecker(p),
	}}
}

// Checkers lists every invariant the campaign runs, including the
// run-pair replay check.
func Checkers() []string {
	return []string{
		"billing-conservation",
		"job-liveness",
		"checkpoint-monotonicity",
		"breaker-legality",
		"replay-determinism",
	}
}

// Verify feeds the whole event stream through every checker, hands
// them the final state, and returns all violations in checker order.
func (s *Suite) Verify(events []event.Event, st *RunState) []Violation {
	for _, ev := range events {
		for _, c := range s.checkers {
			c.Observe(ev)
		}
	}
	var out []Violation
	for _, c := range s.checkers {
		c.Finish(st)
		out = append(out, c.Violations()...)
	}
	return out
}
