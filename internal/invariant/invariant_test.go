package invariant

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/cloud"
)

// TestCleanSchedulesNoViolations: the current tree survives every
// single-fault lattice point — one per kind, at the submit slot and
// mid-run — with all checkers quiet, replay included.
func TestCleanSchedulesNoViolations(t *testing.T) {
	base := Scenario{}.SubmitSlot()
	scheds := []chaos.Schedule{nil}
	for k := chaos.FaultAPI; k <= chaos.FaultCheckpointFail; k++ {
		scheds = append(scheds,
			chaos.Schedule{{Slot: base, Kind: k, Slots: 6}},
			chaos.Schedule{{Slot: base + 4, Kind: k, Slots: 12, Target: "region-1"}})
	}
	for i, sched := range scheds {
		res := RunSchedule(Scenario{}, i, sched, true)
		if !res.Clean() {
			t.Errorf("schedule %d %s: err=%q violations=%v", i, res.Schedule, res.Err, res.Violations)
		}
	}
}

// TestUnknownTargetRejected: a fault naming no fleet member is a
// schedule error, not a silent no-op.
func TestUnknownTargetRejected(t *testing.T) {
	_, err := Scenario{}.Run(chaos.Schedule{{Slot: 0, Kind: chaos.FaultAPI, Target: "region-9", Slots: 1}})
	if err == nil || !strings.Contains(err.Error(), "region-9") {
		t.Fatalf("unknown target not rejected: %v", err)
	}
}

// mutateBilling is the seeded billing defect for mutation testing: if
// the schedule delivered any fault, the chronologically last instance
// is overcharged — exactly the class of bug billing conservation
// exists to catch.
func mutateBilling(st *RunState) {
	delivered := 0
	for _, m := range st.Members {
		if m.Injector != nil {
			delivered += m.Injector.Stats().Total()
		}
	}
	if delivered == 0 {
		return
	}
	var last *cloud.Instance
	for _, m := range st.Members {
		if insts := m.Region.Instances(); len(insts) > 0 {
			last = insts[len(insts)-1]
		}
	}
	if last != nil {
		last.Cost += 0.017
	}
}

// TestSeededBillingBugCaughtAndShrunk is the acceptance mutation
// test: a deliberately introduced billing defect — triggered whenever
// faults are actually delivered — must (a) be caught by the billing
// checker and (b) shrink to a minimal reproducer of at most 3 faults.
func TestSeededBillingBugCaughtAndShrunk(t *testing.T) {
	sc := Scenario{Mutate: mutateBilling}
	base := sc.SubmitSlot()
	sched := chaos.Schedule{
		{Slot: base, Kind: chaos.FaultAPI, Slots: 6},
		{Slot: base + 2, Kind: chaos.FaultStaleHistory, Slots: 6},
		{Slot: base + 6, Kind: chaos.FaultOutbidDelay, Slots: 6, Target: "region-1"},
	}

	res := RunSchedule(sc, 0, sched, false)
	if res.Err != "" {
		t.Fatalf("mutated run errored: %s", res.Err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("seeded billing bug not caught")
	}
	caught := false
	for _, v := range res.Violations {
		if v.Checker == "billing-conservation" {
			caught = true
		}
	}
	if !caught {
		t.Fatalf("billing checker silent; violations: %v", res.Violations)
	}

	ShrinkViolating(sc, &res, sched, false, 200)
	if res.ShrinkTruncated {
		t.Fatalf("shrinking did not reach a fixpoint in %d evals", res.ShrinkEvals)
	}
	if res.ShrunkFaults > 3 {
		t.Errorf("minimal reproducer has %d faults, want <= 3:\n%s", res.ShrunkFaults, res.Shrunk)
	}
	if res.ShrunkFaults < 1 {
		t.Errorf("empty reproducer cannot violate:\n%s", res.Shrunk)
	}
	if !strings.HasPrefix(res.Shrunk, "chaos.Schedule{") {
		t.Errorf("reproducer is not a Go literal: %q", res.Shrunk)
	}
	t.Logf("shrunk %d faults -> %d in %d evals:\n%s", len(sched), res.ShrunkFaults, res.ShrinkEvals, res.Shrunk)
}

// TestLivenessCatchesIncompletion: a report claiming the job did not
// finish trips the liveness checker (Prop. 5's completion guarantee).
func TestLivenessCatchesIncompletion(t *testing.T) {
	sc := Scenario{Mutate: func(st *RunState) { st.Report.Outcome.Completed = false }}
	res := RunSchedule(sc, 0, nil, false)
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	found := false
	for _, v := range res.Violations {
		if v.Checker == "job-liveness" && strings.Contains(v.Detail, "did not complete") {
			found = true
		}
	}
	if !found {
		t.Errorf("incompletion not flagged: %v", res.Violations)
	}
}

// TestLivenessCatchesUnexcusedLeak: striking a leaked request from
// the report's excusal list must turn it into a violation — the
// excusal mechanism itself is what is being verified.
func TestLivenessCatchesFleetCostDrift(t *testing.T) {
	sc := Scenario{Mutate: func(st *RunState) { st.Report.FleetCost += 1 }}
	res := RunSchedule(sc, 0, nil, false)
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	found := false
	for _, v := range res.Violations {
		if v.Checker == "billing-conservation" && strings.Contains(v.Detail, "FleetCost") {
			found = true
		}
	}
	if !found {
		t.Errorf("fleet-cost drift not flagged: %v", res.Violations)
	}
}

// TestReplayCatchesDivergence: CompareReplay flags differing
// fingerprints and localizes the first diverging line.
func TestReplayCatchesDivergence(t *testing.T) {
	a, err := Scenario{}.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scenario{}.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if vs := CompareReplay(a, b); len(vs) != 0 {
		t.Fatalf("identical runs flagged: %v", vs)
	}
	b.Fingerprint = append([]byte("tampered\n"), b.Fingerprint...)
	vs := CompareReplay(a, b)
	if len(vs) != 1 || vs[0].Checker != "replay-determinism" {
		t.Fatalf("tampered fingerprint not flagged: %v", vs)
	}
	if !strings.Contains(vs[0].Detail, "line 1") {
		t.Errorf("divergence not localized: %v", vs[0])
	}
}

// TestSummarizeCounts: the campaign report's counters and result
// filtering are consistent.
func TestSummarizeCounts(t *testing.T) {
	results := []ScheduleResult{
		{Index: 0},
		{Index: 1, Violations: []Violation{{Checker: "billing-conservation"}}},
		{Index: 2, Err: "boom"},
		{Index: 3},
	}
	rep := Summarize(7, true, results)
	if rep.Clean != 2 || rep.Violating != 1 || rep.Errors != 1 || rep.Schedules != 4 {
		t.Errorf("counts: %+v", rep)
	}
	if len(rep.Results) != 2 {
		t.Errorf("kept %d results, want the 2 non-clean ones", len(rep.Results))
	}
	if len(rep.Checkers) != 5 {
		t.Errorf("checker roster: %v", rep.Checkers)
	}
}
