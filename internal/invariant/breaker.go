package invariant

import (
	"fmt"
	"strings"

	"repro/internal/fleet"
	"repro/internal/obs/event"
)

// scoreEps absorbs float noise when comparing recorded health scores
// against the trip threshold.
const scoreEps = 1e-9

// breakerChecker verifies every BreakerTransition event walks the
// legal state machine (DESIGN.md §8) — Closed→Open, Open→HalfOpen,
// HalfOpen→{Open, Closed}, nothing else — and that each transition's
// recorded cause is consistent with the health vector attached to it:
// a soft (score) trip must carry a score at or above TripScore, a
// capacity hard trip must carry a blocked streak at or above
// OutageTrip, quarantine release and probe survival must say so.
type breakerChecker struct {
	p     Params
	state map[string]fleet.BreakerState // per member; zero value is Closed
	vs    []Violation
}

func newBreakerChecker(p Params) *breakerChecker {
	return &breakerChecker{p: p, state: make(map[string]fleet.BreakerState)}
}

func (c *breakerChecker) Name() string            { return "breaker-legality" }
func (c *breakerChecker) Finish(st *RunState)     {}
func (c *breakerChecker) Violations() []Violation { return c.vs }

func (c *breakerChecker) fail(ev event.Event, detail string, args ...any) {
	c.vs = append(c.vs, Violation{Checker: c.Name(), Slot: ev.Slot, Region: ev.Region,
		Detail: fmt.Sprintf(detail, args...)})
}

// healthVecLen is the BreakerTransition vector layout: the three rate
// terms, the two streaks, and the composite score.
const healthVecLen = 6

func (c *breakerChecker) Observe(ev event.Event) {
	if ev.Kind != event.BreakerTransition {
		return
	}
	prev := c.state[ev.Region]
	next := fleet.BreakerState(int(ev.Value))
	c.state[ev.Region] = next

	if ev.Subject != next.String() {
		c.fail(ev, "transition subject %q disagrees with encoded state %v", ev.Subject, next)
	}
	if !fleet.LegalTransition(prev, next) {
		c.fail(ev, "illegal breaker transition %v -> %v", prev, next)
	}
	if len(ev.Vec) != healthVecLen {
		c.fail(ev, "health vector has %d terms, want %d", len(ev.Vec), healthVecLen)
		return
	}
	score, blockedStreak := ev.Vec[5], ev.Vec[3]
	switch next {
	case fleet.HalfOpen:
		if ev.Cause != "quarantine-elapsed" {
			c.fail(ev, "transition to half-open with cause %q, want quarantine-elapsed", ev.Cause)
		}
	case fleet.Closed:
		if ev.Cause != "probe-survived" {
			c.fail(ev, "transition to closed with cause %q, want probe-survived", ev.Cause)
		}
	case fleet.Open:
		switch {
		case strings.HasPrefix(ev.Cause, "health score "):
			if score < c.p.TripScore-scoreEps {
				c.fail(ev, "soft trip recorded score %v below TripScore %v", score, c.p.TripScore)
			}
		case strings.HasPrefix(ev.Cause, "capacity outage: "):
			if blockedStreak < float64(c.p.OutageTrip) {
				c.fail(ev, "capacity hard trip with blocked streak %v below OutageTrip %d",
					blockedStreak, c.p.OutageTrip)
			}
		case ev.Cause == "breaker-open" || ev.Cause == "fallback-vetoed" ||
			strings.HasPrefix(ev.Cause, "transient: "):
			// A leg abort tripping the host: the cause is the abort
			// reason itself; no vector precondition applies.
		default:
			c.fail(ev, "trip with unrecognized cause %q", ev.Cause)
		}
	default:
		c.fail(ev, "transition to unknown breaker state %v", next)
	}
}
