package invariant

import (
	"math/rand"

	"repro/internal/chaos"
)

// Grid enumerates explicit fault schedules over a bounded parameter
// lattice: every (offset, duration, kind, target) single-fault
// schedule, plus seeded random pairings of those singles. Offsets are
// relative to the scenario's submit slot so the same grid transfers
// across scenario sizes.
type Grid struct {
	// Offsets are fault start slots relative to the submit slot.
	Offsets []int
	// Durations are episode lengths in slots.
	Durations []int
	// Kinds are the fault kinds to enumerate.
	Kinds []chaos.FaultKind
	// Targets are member IDs ("" = home region).
	Targets []string
	// Pairs is how many seeded two-fault combinations to add on top of
	// the exhaustive singles.
	Pairs int
	// Seed drives the pair and Random selections.
	Seed int64
}

// DefaultGrid is the smoke campaign's lattice: 5 offsets x 3
// durations x 6 kinds x 2 targets = 180 singles, plus 40 pairs.
func DefaultGrid() Grid {
	return Grid{
		Offsets:   []int{0, 2, 6, 18, 54},
		Durations: []int{1, 6, 24},
		Kinds: []chaos.FaultKind{
			chaos.FaultAPI, chaos.FaultRegionOutage, chaos.FaultCapacityOutage,
			chaos.FaultStaleHistory, chaos.FaultOutbidDelay, chaos.FaultCheckpointFail,
		},
		Targets: []string{"", "region-1"},
		Pairs:   40,
		Seed:    1,
	}
}

// singles enumerates the one-fault lattice points.
func (g Grid) singles(base int) []chaos.FaultAt {
	var out []chaos.FaultAt
	for _, off := range g.Offsets {
		for _, d := range g.Durations {
			for _, k := range g.Kinds {
				for _, t := range g.Targets {
					out = append(out, chaos.FaultAt{Slot: base + off, Kind: k, Target: t, Slots: d})
				}
			}
		}
	}
	return out
}

// Schedules enumerates the grid: every single, then Pairs seeded
// two-fault combinations of distinct singles. base is the scenario's
// submit slot.
func (g Grid) Schedules(base int) []chaos.Schedule {
	singles := g.singles(base)
	out := make([]chaos.Schedule, 0, len(singles)+g.Pairs)
	for _, f := range singles {
		out = append(out, chaos.Schedule{f})
	}
	if len(singles) < 2 {
		return out
	}
	rng := rand.New(rand.NewSource(g.Seed))
	for i := 0; i < g.Pairs; i++ {
		a := rng.Intn(len(singles))
		b := rng.Intn(len(singles) - 1)
		if b >= a {
			b++
		}
		out = append(out, chaos.Schedule{singles[a], singles[b]})
	}
	return out
}

// Random generates n seeded random schedules of 1..maxFaults faults
// each, with start slots in [base, base+window) and durations up to
// the grid's largest, drawing kinds and targets from the grid.
func (g Grid) Random(n, maxFaults, base, window int) []chaos.Schedule {
	if n <= 0 || len(g.Kinds) == 0 || len(g.Targets) == 0 || window <= 0 {
		return nil
	}
	if maxFaults <= 0 {
		maxFaults = 3
	}
	maxDur := 1
	for _, d := range g.Durations {
		if d > maxDur {
			maxDur = d
		}
	}
	rng := rand.New(rand.NewSource(g.Seed*7919 + int64(n)))
	out := make([]chaos.Schedule, n)
	for i := range out {
		s := make(chaos.Schedule, 1+rng.Intn(maxFaults))
		for j := range s {
			s[j] = chaos.FaultAt{
				Slot:   base + rng.Intn(window),
				Kind:   g.Kinds[rng.Intn(len(g.Kinds))],
				Target: g.Targets[rng.Intn(len(g.Targets))],
				Slots:  1 + rng.Intn(maxDur),
			}
		}
		out[i] = s
	}
	return out
}
