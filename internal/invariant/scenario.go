package invariant

import (
	"bytes"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/cloud"
	"repro/internal/fleet"
	"repro/internal/instances"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/obs/event"
	"repro/internal/timeslot"
	"repro/internal/trace"
)

// Scenario is the deterministic fleet run the fault-schedule explorer
// perturbs: a small fleet of regions with seeded price traces, a
// short warm-up, and one persistent job, everything sized so hundreds
// of runs fit a smoke-test budget. The zero value gets the defaults
// below. Trace generation is memoized repo-wide, so every run of the
// same scenario shares the same immutable traces.
type Scenario struct {
	// Regions is the fleet size (default 2). Member IDs are
	// "region-0".."region-N-1"; fault targets must name one of them
	// ("" targets the home region, region-0).
	Regions int
	// Seed derives every trace seed (trace i uses Seed + i*4099, the
	// experiments package's spacing). Default 1.
	Seed int64
	// Days is the generated trace length (default 8).
	Days int
	// Warmup is how many slots of price history accrue before the job
	// is submitted (default 576 = 2 days).
	Warmup int
	// HistoryWindow is each member client's price-history window
	// (default 48h — short enough that warm-up saturates it).
	HistoryWindow timeslot.Hours
	// Type is the instance type (default R3XLarge).
	Type instances.Type
	// Exec is the job size in hours (default 1).
	Exec timeslot.Hours
	// Recovery is the per-interruption recovery time t_r (default 30s).
	Recovery timeslot.Hours
	// MigrationPenalty is the fleet's cross-region move surcharge
	// (default 60s).
	MigrationPenalty timeslot.Hours
	// Mutate, when non-nil, corrupts the final run state before the
	// checkers see it. It exists for mutation tests — proving a
	// deliberately seeded defect is caught and shrunk — and must be
	// deterministic for shrinking to converge.
	Mutate func(st *RunState)
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Regions <= 0 {
		sc.Regions = 2
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.Days <= 0 {
		sc.Days = 8
	}
	if sc.Warmup <= 0 {
		sc.Warmup = 2 * 288
	}
	if sc.HistoryWindow <= 0 {
		sc.HistoryWindow = 48
	}
	if sc.Type == "" {
		sc.Type = instances.R3XLarge
	}
	if sc.Exec <= 0 {
		sc.Exec = 1
	}
	if sc.Recovery <= 0 {
		sc.Recovery = timeslot.Seconds(30)
	}
	if sc.MigrationPenalty <= 0 {
		sc.MigrationPenalty = timeslot.Seconds(60)
	}
	return sc
}

// SubmitSlot is the slot the job is submitted at — the natural base
// for fault-schedule offsets.
func (sc Scenario) SubmitSlot() int { return sc.withDefaults().Warmup }

// RunResult is one completed scenario run: the final state the
// checkers audit, the full event stream, and the determinism
// fingerprint CompareReplay matches across runs.
type RunResult struct {
	State       *RunState
	Events      []event.Event
	Fingerprint []byte
}

// Run executes the scenario under the given fault schedule and
// returns the audited state. Faults are partitioned by Target onto
// per-member schedule injectors; an empty Target means the home
// region. The run itself is expected to SURVIVE every schedule — the
// checkers decide afterwards whether the survival was honest.
func (sc Scenario) Run(sched chaos.Schedule) (*RunResult, error) {
	sc = sc.withDefaults()
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	byMember := make([][]chaos.FaultAt, sc.Regions)
	for _, f := range sched {
		idx := 0
		if f.Target != "" {
			idx = -1
			for i := 0; i < sc.Regions; i++ {
				if f.Target == fmt.Sprintf("region-%d", i) {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("invariant: fault target %q names no member of a %d-region fleet",
					f.Target, sc.Regions)
			}
		}
		byMember[idx] = append(byMember[idx], f)
	}

	rec := event.NewRecorder(event.Config{Unbounded: true})
	met := obs.New()
	members := make([]fleet.Member, sc.Regions)
	states := make([]MemberState, sc.Regions)
	for i := range members {
		tr, err := trace.Generate(sc.Type, trace.GenOptions{Days: sc.Days, Seed: sc.Seed + int64(i)*4099})
		if err != nil {
			return nil, err
		}
		region, err := cloud.NewRegion(tr)
		if err != nil {
			return nil, err
		}
		cl, err := client.New(region)
		if err != nil {
			return nil, err
		}
		cl.HistoryWindow = sc.HistoryWindow
		cl.SetMetrics(obs.New())
		id := fmt.Sprintf("region-%d", i)
		var inj *chaos.ScheduleInjector
		if len(byMember[i]) > 0 {
			inj, err = chaos.NewSchedule(chaos.Schedule(byMember[i]))
			if err != nil {
				return nil, err
			}
			if err := inj.Arm(region, cl.Volume); err != nil {
				return nil, err
			}
		}
		members[i] = fleet.Member{ID: id, Region: region, Client: cl}
		states[i] = MemberState{ID: id, Region: region, Volume: cl.Volume,
			Metrics: cl.Metrics, Injector: inj}
	}
	ctl, err := fleet.NewController(fleet.Config{
		MigrationPenalty: sc.MigrationPenalty,
		Metrics:          met,
		Trace:            rec,
	}, members...)
	if err != nil {
		return nil, err
	}
	if err := ctl.Skip(sc.Warmup); err != nil {
		return nil, err
	}
	spec := job.Spec{ID: "resil", Type: sc.Type, Exec: sc.Exec, Recovery: sc.Recovery}
	rep, err := ctl.RunPersistent(spec)
	if err != nil {
		return nil, fmt.Errorf("invariant: scenario run under %d faults: %w", len(sched), err)
	}

	st := &RunState{
		Spec: spec,
		// The scenario runs a zero-value fleet.Config, so the checkers
		// verify against its documented defaults.
		Params: Params{
			TripScore:        0.5,
			OutageTrip:       3,
			MigrationPenalty: sc.MigrationPenalty,
			Recovery:         sc.Recovery,
		},
		Members: states,
		Report:  rep,
	}
	if sc.Mutate != nil {
		sc.Mutate(st)
	}
	return &RunResult{State: st, Events: rec.Events(), Fingerprint: fingerprint(st, met, rec)}, nil
}

// Fingerprint serializes a run's determinism fingerprint — the
// exported entry for harnesses (e.g. the strategy tournament) that
// assemble RunResults from their own runs instead of Scenario.Run.
func Fingerprint(st *RunState, met *obs.Registry, rec *event.Recorder) []byte {
	return fingerprint(st, met, rec)
}

// fingerprint serializes everything the determinism contract pins:
// the failover schedule, the merged outcome, the fleet and member
// metric snapshots, and the byte-stable flight-recorder export.
func fingerprint(st *RunState, met *obs.Registry, rec *event.Recorder) []byte {
	var b bytes.Buffer
	b.WriteString(st.Report.Schedule())
	out := st.Report.Outcome
	fmt.Fprintf(&b, "completed=%v completion=%v runtime=%v interruptions=%d cost=%v fleetcost=%v migrations=%d escalated=%v leaked=%d/%d\n",
		out.Completed, float64(out.Completion), float64(out.RunTime), out.Interruptions,
		out.Cost, st.Report.FleetCost, st.Report.Migrations, st.Report.Escalated,
		len(st.Report.LeakedRequests), len(st.Report.LeakedInstances))
	writeSnapshot(&b, met)
	for _, m := range st.Members {
		writeSnapshot(&b, m.Metrics)
	}
	if err := rec.WriteJSONL(&b); err != nil {
		fmt.Fprintf(&b, "event export failed: %v\n", err)
	}
	return b.Bytes()
}

func writeSnapshot(b *bytes.Buffer, reg *obs.Registry) {
	if reg == nil {
		return
	}
	j, err := reg.Snapshot().JSON()
	if err != nil {
		fmt.Fprintf(b, "snapshot failed: %v\n", err)
		return
	}
	b.Write(j)
	b.WriteByte('\n')
}
