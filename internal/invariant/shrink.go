package invariant

import "repro/internal/chaos"

// ShrinkResult is a minimized violating schedule.
type ShrinkResult struct {
	// Schedule still violates (when the input did).
	Schedule chaos.Schedule
	// Evals counts oracle evaluations spent.
	Evals int
	// Truncated reports the eval budget ran out before the fixpoint;
	// Schedule is the smallest violator found so far.
	Truncated bool
}

// Shrink minimizes a violating fault schedule against the violates
// oracle, ddmin-style, iterated to a fixpoint:
//
//  1. Subset removal (ddmin): remove complement chunks, halving chunk
//     size down to single faults.
//  2. Duration halving: each surviving fault's episode length is
//     halved while the violation persists.
//  3. Slot bisection: each fault's start slot is binary-searched down
//     toward floor (the scenario's submit slot).
//
// Every accepted step strictly decreases the measure (fault count,
// then total duration, then total start offset), so the fixpoint
// loop terminates; maxEvals is a hard cap on oracle calls on top.
// At an untruncated fixpoint the result is 1-minimal: removing any
// single remaining fault no longer violates.
//
// The oracle must be deterministic and violates(s) must be true on
// entry; otherwise the input is returned unchanged (after the probes
// the budget allowed).
func Shrink(s chaos.Schedule, floor int, violates func(chaos.Schedule) bool, maxEvals int) ShrinkResult {
	if maxEvals <= 0 {
		maxEvals = 200
	}
	evals, truncated := 0, false
	test := func(c chaos.Schedule) bool {
		if evals >= maxEvals {
			truncated = true
			return false
		}
		evals++
		return violates(c)
	}

	cur := s.Clone()
	for changed := true; changed && !truncated; {
		changed = false

		// Phase 1: ddmin subset removal.
		for n := 2; len(cur) >= 2; {
			removed := false
			chunk := (len(cur) + n - 1) / n
			for start := 0; start < len(cur); start += chunk {
				end := min(start+chunk, len(cur))
				if end-start >= len(cur) {
					continue // never propose the empty schedule
				}
				cand := append(append(chaos.Schedule{}, cur[:start]...), cur[end:]...)
				if test(cand) {
					cur = cand
					removed, changed = true, true
					n = max(2, n-1)
					break
				}
			}
			if !removed {
				if n >= len(cur) {
					break
				}
				n = min(n*2, len(cur))
			}
		}

		// Phase 2: duration halving.
		for i := range cur {
			for cur[i].Slots > 1 {
				cand := cur.Clone()
				cand[i].Slots /= 2
				if !test(cand) {
					break
				}
				cur = cand
				changed = true
			}
		}

		// Phase 3: slot bisection toward floor. Invariant: cur (slot =
		// hi) violates; find the smallest slot in [floor, hi] that
		// still does.
		for i := range cur {
			if cur[i].Slot <= floor {
				continue
			}
			lo, hi := floor, cur[i].Slot
			for lo < hi && !truncated {
				mid := lo + (hi-lo)/2
				cand := cur.Clone()
				cand[i].Slot = mid
				if test(cand) {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			if hi < cur[i].Slot {
				cur[i].Slot = hi
				changed = true
			}
		}
	}
	return ShrinkResult{Schedule: cur, Evals: evals, Truncated: truncated}
}
