package experiments

import (
	"fmt"
	"strings"

	"repro/internal/client"
	"repro/internal/instances"
	"repro/internal/job"
	"repro/internal/timeslot"
)

// SegmentState classifies a stretch of a job's timeline.
type SegmentState int

const (
	// SegIdle: the bid is below the spot price; the job waits.
	SegIdle SegmentState = iota
	// SegRunning: the job runs (and is billed).
	SegRunning
)

// String implements fmt.Stringer.
func (s SegmentState) String() string {
	if s == SegRunning {
		return "running"
	}
	return "idle"
}

// Segment is one contiguous stretch of the Fig. 4 timeline.
type Segment struct {
	// FromSlot and ToSlot bound the stretch (inclusive, exclusive)
	// relative to submission.
	FromSlot, ToSlot int
	State            SegmentState
	// MaxPrice is the highest spot price seen during the stretch.
	MaxPrice float64
}

// Fig4Result is the Figure 4 reproduction: one persistent job's
// price-vs-bid timeline with its interruptions.
type Fig4Result struct {
	Type instances.Type
	// Bid is the persistent bid (the paper's example bids 0.0323 on
	// r3.xlarge).
	Bid float64
	// Segments is the run/idle timeline.
	Segments []Segment
	// Outcome is the measured result.
	Outcome job.Outcome
}

// Figure4 reproduces the example timeline: a one-hour r3.xlarge job
// with t_r = 30s on a persistent request, showing interruptions and
// resumptions against the price series.
func Figure4(o Opts) (Fig4Result, error) {
	o = o.withDefaults()
	// Hunt for a seed offset whose trace interrupts the job at least
	// once — Fig. 4 shows two interruptions; an uneventful window
	// would be an empty figure.
	for attempt := int64(0); attempt < 64; attempt++ {
		res, err := figure4Once(o, attempt)
		if err != nil {
			return Fig4Result{}, err
		}
		if res.Outcome.Completed && res.Outcome.Interruptions >= 1 {
			return res, nil
		}
	}
	// Fall back to the last attempt even if quiet.
	return figure4Once(o, 64)
}

func figure4Once(o Opts, attempt int64) (Fig4Result, error) {
	typ := instances.R3XLarge
	region, err := regionFor([]instances.Type{typ}, o.Seed+attempt*31337, o.Days)
	if err != nil {
		return Fig4Result{}, err
	}
	cl, err := client.New(region)
	if err != nil {
		return Fig4Result{}, err
	}
	if err := cl.Skip(historySlots); err != nil {
		return Fig4Result{}, err
	}
	start := region.Now()
	rep, err := cl.RunPersistent(job.Spec{ID: "fig4", Type: typ, Exec: 1, Recovery: timeslot.Seconds(30)})
	if err != nil {
		return Fig4Result{}, err
	}

	// Rebuild the run/idle timeline from the region's price trace.
	hist, err := region.PriceHistory(typ, timeslot.Hours(float64(region.Now()-start)/12+1))
	if err != nil {
		return Fig4Result{}, err
	}
	res := Fig4Result{Type: typ, Bid: rep.BidPrice, Outcome: rep.Outcome}
	n := region.Now() - start
	var cur *Segment
	for i := 0; i < n; i++ {
		price := hist.At(hist.Len() - n + i)
		state := SegIdle
		if rep.BidPrice >= price {
			state = SegRunning
		}
		if cur == nil || cur.State != state {
			res.Segments = append(res.Segments, Segment{FromSlot: i, ToSlot: i + 1, State: state, MaxPrice: price})
			cur = &res.Segments[len(res.Segments)-1]
			continue
		}
		cur.ToSlot = i + 1
		if price > cur.MaxPrice {
			cur.MaxPrice = price
		}
	}
	return res, nil
}

// Render returns a textual timeline (one row per segment) plus the
// summary line.
func (r Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instance %s, persistent bid %.4f, %d interruption(s), completion %.2fh, cost $%.4f\n",
		r.Type, r.Bid, r.Outcome.Interruptions, float64(r.Outcome.Completion), r.Outcome.Cost)
	rows := make([][]string, len(r.Segments))
	for i, s := range r.Segments {
		bar := strings.Repeat("#", min(s.ToSlot-s.FromSlot, 60))
		rows[i] = []string{
			fmt.Sprintf("%3d–%3d", s.FromSlot, s.ToSlot),
			s.State.String(),
			f4(s.MaxPrice),
			bar,
		}
	}
	b.WriteString(Table([]string{"slots", "state", "max price", ""}, rows))
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
