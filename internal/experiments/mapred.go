package experiments

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/instances"
	"repro/internal/mapreduce"
	"repro/internal/timeslot"
)

// MRSetting is one of the five §7.2 client settings: which instance
// types serve the master and slave roles. The paper bids
// compute-optimized types for the slaves and cheaper types for the
// master (the master only coordinates).
type MRSetting struct {
	Name          string
	Master, Slave instances.Type
}

// Table4Settings are the five client settings used for Table 4 and
// Figure 7.
func Table4Settings() []MRSetting {
	return []MRSetting{
		{"S1", instances.C3XLarge, instances.C32XL},
		{"S2", instances.C3XLarge, instances.C34XL},
		{"S3", instances.M3XLarge, instances.C34XL},
		{"S4", instances.M3XLarge, instances.C38XL},
		{"S5", instances.R3XLarge, instances.C38XL},
	}
}

// mrSpec builds the word-count workload of §7.2: t_r = 30s,
// t_o = 60s, and a corpus sized to t_s = 2 instance-hours.
func mrSpec(setting MRSetting, seed int64) (client.MapReduceSpec, error) {
	corpus, err := mapreduce.GenerateCorpus(60, 250, seed) // 15000 words
	if err != nil {
		return client.MapReduceSpec{}, err
	}
	return client.MapReduceSpec{
		MasterType:   setting.Master,
		SlaveType:    setting.Slave,
		Corpus:       corpus,
		WordsPerHour: 7500,
		Recovery:     timeslot.Seconds(30),
		Overhead:     timeslot.Seconds(60),
	}, nil
}

// Table4Row is one client setting of Table 4: the optimal bids, the
// minimum worker count, and the measured cost split.
type Table4Row struct {
	Setting MRSetting
	// MasterBid and SlaveBid are the Eq. 20 optimal bid prices.
	MasterBid, SlaveBid float64
	// Workers is the planner's minimum M.
	Workers int
	// MasterCost and SlaveCost are measured means over Runs.
	MasterCost, SlaveCost float64
	// MasterShare is MasterCost/SlaveCost (the paper: 10–25%).
	MasterShare float64
	// Runs counts completed repetitions.
	Runs int
}

// Table4Result is the Table 4 reproduction.
type Table4Result struct{ Rows []Table4Row }

// Fig7Row is one client setting of Figure 7: completion time and
// cost, spot vs on-demand, analytic vs measured.
type Fig7Row struct {
	Setting MRSetting
	// SpotCompletion/SpotCost are measured means on spot instances.
	SpotCompletion timeslot.Hours
	SpotCost       float64
	// AnalyticCompletion/AnalyticCost are the Eq. 20 plan's
	// predictions.
	AnalyticCompletion timeslot.Hours
	AnalyticCost       float64
	// ODCompletion/ODCost are the on-demand baseline means.
	ODCompletion timeslot.Hours
	ODCost       float64
	// Savings is 1 − spot/on-demand cost (the paper: up to 92.6%).
	Savings float64
	// Slowdown is spot/on-demand completion − 1 (the paper: ≈14.9%).
	Slowdown float64
	// Runs counts completed repetitions.
	Runs int
}

// Fig7Result is the Figure 7 reproduction.
type Fig7Result struct{ Rows []Fig7Row }

// MapReduceEval runs the five §7.2 client settings Runs times each and
// produces both Table 4 and Figure 7.
func MapReduceEval(o Opts) (Table4Result, Fig7Result, error) {
	o = o.withDefaults()
	settings := Table4Settings()
	type mrRun struct {
		rep client.MapReduceReport
		od  mapreduce.Result
		ok  bool
	}
	runsOut := make([][]mrRun, len(settings))
	cellOffs := make([][]int, len(settings))
	for si := range settings {
		runsOut[si] = make([]mrRun, o.Runs)
		cellOffs[si] = offsets(o.Runs, o.Seed+int64(si))
	}
	// Both arms of each repetition run on private regions: every
	// (setting, run) pair schedules freely through one shared pool,
	// deterministic by seed; aggregation follows in setting order.
	err := forEachCellRun(len(settings), o.Runs, nil, func(si, run int) error {
		setting := settings[si]
		seed := o.Seed + int64(si)*2003 + int64(run)*7919
		spec, err := mrSpec(setting, seed)
		if err != nil {
			return err
		}

		// Spot arm.
		region, err := regionFor([]instances.Type{setting.Master, setting.Slave}, seed, o.Days)
		if err != nil {
			return err
		}
		cl, err := client.New(region)
		if err != nil {
			return err
		}
		if err := cl.Skip(historySlots + cellOffs[si][run]); err != nil {
			return err
		}
		rep, err := cl.RunMapReduce(spec)
		if err != nil {
			return err
		}
		if !rep.Result.Completed {
			return nil
		}

		// On-demand arm on an identical fresh region, same M.
		region2, err := regionFor([]instances.Type{setting.Master, setting.Slave}, seed, o.Days)
		if err != nil {
			return err
		}
		cl2, err := client.New(region2)
		if err != nil {
			return err
		}
		if err := cl2.Skip(historySlots + cellOffs[si][run]); err != nil {
			return err
		}
		od, err := cl2.RunMapReduceOnDemand(spec, rep.Plan.Workers)
		if err != nil {
			return err
		}
		if !od.Completed {
			return nil
		}
		runsOut[si][run] = mrRun{rep: rep, od: od, ok: true}
		return nil
	})
	var t4 Table4Result
	var f7 Fig7Result
	if err != nil {
		return t4, f7, err
	}
	for si, setting := range settings {
		var (
			mCost, sCost, spotCost, spotCompl float64
			anCost, anCompl, odCost, odCompl  float64
			masterBid, slaveBid               float64
			workers, completed                int
		)
		for _, r := range runsOut[si] {
			if !r.ok {
				continue
			}
			rep, od := r.rep, r.od
			completed++
			masterBid += rep.Plan.Master.Price
			slaveBid += rep.Plan.Slaves.Price
			workers = rep.Plan.Workers
			mCost += rep.Result.MasterCost
			sCost += rep.Result.SlaveCost
			spotCost += rep.Result.TotalCost
			spotCompl += float64(rep.Result.Completion)
			anCost += rep.Plan.TotalCost
			anCompl += float64(rep.Plan.Completion)
			odCost += od.TotalCost
			odCompl += float64(od.Completion)
		}
		if completed == 0 {
			return t4, f7, fmt.Errorf("experiments: no completed MapReduce runs for %s", setting.Name)
		}
		n := float64(completed)
		t4.Rows = append(t4.Rows, Table4Row{
			Setting:     setting,
			MasterBid:   masterBid / n,
			SlaveBid:    slaveBid / n,
			Workers:     workers,
			MasterCost:  mCost / n,
			SlaveCost:   sCost / n,
			MasterShare: (mCost / n) / (sCost / n),
			Runs:        completed,
		})
		f7.Rows = append(f7.Rows, Fig7Row{
			Setting:            setting,
			SpotCompletion:     timeslot.Hours(spotCompl / n),
			SpotCost:           spotCost / n,
			AnalyticCompletion: timeslot.Hours(anCompl / n),
			AnalyticCost:       anCost / n,
			ODCompletion:       timeslot.Hours(odCompl / n),
			ODCost:             odCost / n,
			Savings:            1 - (spotCost/n)/(odCost/n),
			Slowdown:           (spotCompl/n)/(odCompl/n) - 1,
			Runs:               completed,
		})
	}
	return t4, f7, nil
}

// Render returns Table 4 as an aligned text table.
func (r Table4Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Setting.Name,
			string(row.Setting.Master), string(row.Setting.Slave),
			f4(row.MasterBid), f4(row.SlaveBid),
			fmt.Sprintf("%d", row.Workers),
			f4(row.MasterCost), f4(row.SlaveCost), pct(row.MasterShare),
			fmt.Sprintf("%d", row.Runs),
		}
	}
	return Table([]string{"setting", "master", "slave", "master-bid", "slave-bid", "M", "master-cost", "slave-cost", "master/slave", "runs"}, rows)
}

// Render returns Figure 7 as an aligned text table.
func (r Fig7Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Setting.Name,
			f2(float64(row.SpotCompletion)), f2(float64(row.AnalyticCompletion)), f2(float64(row.ODCompletion)),
			f4(row.SpotCost), f4(row.AnalyticCost), f4(row.ODCost),
			pct(row.Savings), pct(row.Slowdown),
			fmt.Sprintf("%d", row.Runs),
		}
	}
	return Table([]string{"setting", "T-spot", "T-model", "T-od", "cost-spot", "cost-model", "cost-od", "savings", "slowdown", "runs"}, rows)
}
