package experiments

import (
	"repro/internal/core"
	"repro/internal/instances"
	"repro/internal/obs/tsdb"
	"repro/internal/timeslot"
	"repro/internal/trace"
)

// Table3Row is one instance type's optimal bid prices for a one-hour
// job (the paper's Table 3).
type Table3Row struct {
	Type instances.Type
	// OnDemand is π̄, the cost baseline.
	OnDemand float64
	// OneTime is the Prop. 4 bid.
	OneTime float64
	// Persistent10 and Persistent30 are the Prop. 5 bids for
	// t_r = 10s and t_r = 30s.
	Persistent10, Persistent30 float64
	// BestOffline is p̂: the §7.1 retrospective baseline searched
	// over the last 10 hours of history.
	BestOffline float64
	// BestOfflineUnderbids reports whether p̂ sits below the one-time
	// optimum — the paper's observation that 10 hours of history can
	// underbid the future.
	BestOfflineUnderbids bool
}

// Table3Result is the Table 3 reproduction.
type Table3Result struct {
	Rows []Table3Row
	// Exec is the job length (1 hour in the paper).
	Exec timeslot.Hours
}

// Table3 computes the optimal bid prices of Table 3 from two-month
// synthetic histories for the five experiment types.
func Table3(o Opts) (Table3Result, error) {
	o = o.withDefaults()
	res := Table3Result{Exec: 1}
	for i, typ := range instances.Table3Types() {
		// DwellSlots 1: the table's bids depend only on the price
		// marginal; independent draws give the cleanest two-month
		// ECDF.
		tr, err := trace.Generate(typ, trace.GenOptions{Days: 61, Seed: o.Seed + int64(i)*211, DwellSlots: 1, Metrics: o.Metrics, Trace: o.Trace})
		if err != nil {
			return Table3Result{}, err
		}
		ecdf, err := tr.ECDF(0)
		if err != nil {
			return Table3Result{}, err
		}
		m := core.Market{Price: ecdf, OnDemand: instances.MustLookup(typ).OnDemand}
		oneTime, err := m.OneTimeBid(core.Job{Exec: res.Exec})
		if err != nil {
			return Table3Result{}, err
		}
		p10, err := m.PersistentBid(core.Job{Exec: res.Exec, Recovery: timeslot.Seconds(10)})
		if err != nil {
			return Table3Result{}, err
		}
		p30, err := m.PersistentBid(core.Job{Exec: res.Exec, Recovery: timeslot.Seconds(30)})
		if err != nil {
			return Table3Result{}, err
		}
		hist, err := tr.LastHours(timeslot.Hours(10))
		if err != nil {
			return Table3Result{}, err
		}
		best, err := hist.BestOfflinePrice(res.Exec)
		if err != nil {
			return Table3Result{}, err
		}
		o.Metrics.Counter("experiments.table3.types").Inc()
		if o.TSDB != nil {
			// Table 3 has no slot loop — it is pure computation over a
			// generated history — so the per-type bids are recorded as
			// one sample each at the history's final slot, labelled by
			// market. This is the cross-type comparison series, not a
			// time walk.
			ls := tsdb.L("type", string(typ))
			slot := tr.Len() - 1
			o.TSDB.Append("table3.on_demand", ls, slot, m.OnDemand)
			o.TSDB.Append("table3.one_time_bid", ls, slot, oneTime.Price)
			o.TSDB.Append("table3.persistent_bid_10s", ls, slot, p10.Price)
			o.TSDB.Append("table3.persistent_bid_30s", ls, slot, p30.Price)
			o.TSDB.Append("table3.best_offline", ls, slot, best)
		}
		res.Rows = append(res.Rows, Table3Row{
			Type:                 typ,
			OnDemand:             m.OnDemand,
			OneTime:              oneTime.Price,
			Persistent10:         p10.Price,
			Persistent30:         p30.Price,
			BestOffline:          best,
			BestOfflineUnderbids: best < oneTime.Price,
		})
	}
	return res, nil
}

// Render returns the result as an aligned text table.
func (r Table3Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		under := "no"
		if row.BestOfflineUnderbids {
			under = "yes"
		}
		rows[i] = []string{
			string(row.Type), f4(row.OnDemand), f4(row.OneTime),
			f4(row.Persistent10), f4(row.Persistent30), f4(row.BestOffline), under,
		}
	}
	return Table([]string{"type", "on-demand", "one-time", "persistent-10s", "persistent-30s", "best-offline", "underbids"}, rows)
}
