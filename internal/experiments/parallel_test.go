package experiments

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForEachRunStopsFeedingAfterError: once a repetition fails, the
// scheduler must stop dispatching new work — repetitions already in
// flight may finish, but the tail of the schedule never starts. The
// first worker blocks until the error has been recorded, so every
// not-yet-dispatched repetition observes the stop flag.
func TestForEachRunStopsFeedingAfterError(t *testing.T) {
	const runs = 1000
	boom := errors.New("boom")
	var started atomic.Int64
	run0done := make(chan struct{})
	err := forEachRun(runs, func(run int) error {
		started.Add(1)
		if run == 0 {
			defer close(run0done)
			return boom
		}
		// Everyone else waits for run 0's failure, so only the
		// repetitions already in flight when the error lands can run.
		<-run0done
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Run 0 fails while at most workers−1 other repetitions are in
	// flight; once stop is set nothing new starts. With a worker pool
	// far smaller than 1000 the tail must stay unscheduled.
	if n := started.Load(); n >= runs {
		t.Fatalf("all %d repetitions started despite an early error", n)
	}
}

// TestForEachRunFirstError: the returned error is the first recorded
// by completion order, and it is stable when only one run fails.
func TestForEachRunFirstError(t *testing.T) {
	boom := errors.New("boom-7")
	err := forEachRun(20, func(run int) error {
		if run == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if err := forEachRun(20, func(int) error { return nil }); err != nil {
		t.Fatalf("clean schedule returned %v", err)
	}
}

// TestForEachCellRunCoversGrid: every (cell, run) pair executes exactly
// once and results can be aggregated per pre-allocated slot.
func TestForEachCellRunCoversGrid(t *testing.T) {
	const cells, runs = 7, 11
	var counts [cells][runs]atomic.Int64
	err := forEachCellRun(cells, runs, nil, func(cell, run int) error {
		counts[cell][run].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < cells; c++ {
		for r := 0; r < runs; r++ {
			if n := counts[c][r].Load(); n != 1 {
				t.Fatalf("pair (%d,%d) ran %d times", c, r, n)
			}
		}
	}
}

// TestForEachCellRunTracedChain: traced run-0 repetitions must execute
// serially in cell order — the invariant that keeps the shared flight
// recorder's byte stream identical to the old per-cell loop.
func TestForEachCellRunTracedChain(t *testing.T) {
	const cells, runs = 9, 5
	var mu sync.Mutex
	var order []int
	var concurrent, maxConcurrent atomic.Int64
	err := forEachCellRun(cells, runs, func(int) bool { return true }, func(cell, run int) error {
		if run != 0 {
			return nil
		}
		if c := concurrent.Add(1); c > maxConcurrent.Load() {
			maxConcurrent.Store(c)
		}
		mu.Lock()
		order = append(order, cell)
		mu.Unlock()
		concurrent.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := maxConcurrent.Load(); n > 1 {
		t.Fatalf("%d traced runs overlapped", n)
	}
	if len(order) != cells {
		t.Fatalf("traced %d cells, want %d", len(order), cells)
	}
	for i, c := range order {
		if c != i {
			t.Fatalf("traced order %v is not cell order", order)
		}
	}
}

// TestForEachCellRunTracedChainSurvivesError: an error in an untraced
// repetition must not deadlock the traced chain — done gates close
// even when work is skipped.
func TestForEachCellRunTracedChainSurvivesError(t *testing.T) {
	boom := errors.New("boom")
	err := forEachCellRun(6, 4, func(int) bool { return true }, func(cell, run int) error {
		if cell == 0 && run == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}
