package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/fleet"
	"repro/internal/instances"
	"repro/internal/invariant"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/obs/event"
	"repro/internal/strategy"
	"repro/internal/timeslot"
)

// tournamentRates is the chaos grid every contender races across:
// fault-free plus two degraded market interfaces.
var tournamentRates = []float64{0, 0.02, 0.05}

// TournamentCell is one (strategy, chaos-rate) grid cell's aggregate.
type TournamentCell struct {
	Strategy string
	// Rate is the chaos.Uniform fault intensity.
	Rate float64
	// Completed counts runs that finished all their work; Errored
	// counts runs the client could not start at all.
	Completed, Errored, Runs int
	// MeanCost and MeanCompletion average over completed runs;
	// MeanSavings is 1 − cost/π̄·t_k against the flat on-demand bill.
	MeanCost       float64
	MeanSavings    float64
	MeanCompletion timeslot.Hours
	// Interruptions, Rebids and FellBack sum over completed runs.
	Interruptions, Rebids, FellBack int
	// Faults is the total number of injected faults across all runs.
	Faults int
	// Violations is what the invariant audit of the cell's seed-0 run
	// found (liveness incompletions are excused for strategies that
	// never promised completion).
	Violations []invariant.Violation
	// ReplayOK reports the seed-0 run reproduced byte-identically.
	ReplayOK bool
}

// TournamentRow is one strategy's league-table line, aggregated over
// the whole chaos grid.
type TournamentRow struct {
	// Rank is the 1-based league position.
	Rank int
	Strategy string
	// Guarantees mirrors the registry's completion promise.
	Guarantees bool
	// Score ranks the league: mean savings × completion rate, so a
	// cheap strategy that rarely finishes cannot beat a slightly
	// dearer one that always does.
	Score float64
	// Savings is the mean saving versus the flat on-demand bill over
	// completed runs, across all grid cells.
	Savings float64
	// CompletionRate is completed runs over all runs, across the grid.
	CompletionRate float64
	MeanCost       float64
	MeanCompletion timeslot.Hours
	// Interruptions, Rebids, FellBack and Errored sum across the grid.
	Interruptions, Rebids, FellBack, Errored int
	// Violations is the total invariant-audit violation count.
	Violations int
	// ReplayOK reports every cell replayed byte-identically.
	ReplayOK bool
	// Cells holds the per-rate detail in tournamentRates order.
	Cells []TournamentCell
}

// TournamentResult is the ranked league table of the strategy
// tournament.
type TournamentResult struct {
	Rows []TournamentRow
	// OnDemandCost is the flat π̄·t_k bill savings are measured
	// against.
	OnDemandCost float64
}

// tournamentSpec is the job every contender runs.
func tournamentSpec(typ instances.Type) job.Spec {
	return job.Spec{ID: "tourney-job", Type: typ, Exec: 1, Recovery: timeslot.Seconds(30)}
}

// tournamentRun executes one job under one registered strategy on a
// fresh chaos-armed region — the tournament's counterpart of chaosRun,
// routed through the strategy engine. It hands back the substrate so
// the audit can inspect the final simulator state.
func tournamentRun(typ instances.Type, name string, rate float64, seed int64, offset, days int, met *obs.Registry, rec *event.Recorder) (client.Report, chaos.Stats, *invariant.MemberState, error) {
	region, err := regionFor([]instances.Type{typ}, seed, days)
	if err != nil {
		return client.Report{}, chaos.Stats{}, nil, err
	}
	cl, err := client.New(region)
	if err != nil {
		return client.Report{}, chaos.Stats{}, nil, err
	}
	if met != nil {
		cl.SetMetrics(met)
	}
	if rec != nil {
		cl.SetTrace(rec)
	}
	inj, err := chaos.New(chaos.Uniform(rate, seed*31+1))
	if err != nil {
		return client.Report{}, chaos.Stats{}, nil, err
	}
	if err := inj.Arm(region, cl.Volume); err != nil {
		return client.Report{}, chaos.Stats{}, nil, err
	}
	if err := cl.Skip(historySlots + offset); err != nil {
		return client.Report{}, chaos.Stats{}, nil, err
	}
	strat, err := strategy.New(name)
	if err != nil {
		return client.Report{}, chaos.Stats{}, nil, err
	}
	member := &invariant.MemberState{ID: region.ID(), Region: region, Volume: cl.Volume, Metrics: cl.Metrics}
	rep, err := cl.RunStrategy(tournamentSpec(typ), strat)
	return rep, inj.Stats(), member, err
}

// tournamentAudit runs a cell's seed-0 configuration once more on a
// private unbounded recorder, verifies the run against the invariant
// suite, and returns its determinism fingerprint.
func tournamentAudit(typ instances.Type, name string, rate float64, seed int64, offset, days int) (*invariant.RunResult, error) {
	rec := event.NewRecorder(event.Config{Unbounded: true})
	met := obs.New()
	rep, _, member, err := tournamentRun(typ, name, rate, seed, offset, days, met, rec)
	if err != nil {
		return nil, err
	}
	spec := tournamentSpec(typ)
	st := &invariant.RunState{
		Spec: spec,
		Params: invariant.Params{
			TripScore:        0.5,
			OutageTrip:       3,
			MigrationPenalty: timeslot.Seconds(60),
			Recovery:         spec.Recovery,
		},
		Members: []invariant.MemberState{*member},
		Report: fleet.Report{
			Spec:      spec,
			Outcome:   rep.Outcome,
			Escalated: rep.Telemetry.FellBackOnDemand,
			FleetCost: member.Region.TotalCost(),
		},
	}
	res := &invariant.RunResult{
		State:       st,
		Events:      rec.Events(),
		Fingerprint: invariant.Fingerprint(st, met, rec),
	}
	return res, nil
}

// auditViolations verifies one audited run, excusing liveness
// incompletions for strategies whose registry metadata never promised
// completion (one-time bids and the best-offline oracle legitimately
// die when out-bid).
func auditViolations(name string, res *invariant.RunResult) []invariant.Violation {
	vs := invariant.NewSuite(res.State.Params).Verify(res.Events, res.State)
	info, ok := strategy.Lookup(name)
	if ok && info.GuaranteesCompletion {
		return vs
	}
	kept := vs[:0]
	for _, v := range vs {
		if v.Checker == "job-liveness" && strings.Contains(v.Detail, "did not complete") {
			continue
		}
		kept = append(kept, v)
	}
	return kept
}

// Tournament races every registered bidding strategy across the chaos
// grid: each (strategy, rate) cell repeats o.Runs seeded runs through
// the strategy engine, the cell's seed-0 configuration is re-run on a
// private flight recorder and audited by the invariant suite (billing
// conservation, job liveness, checkpoint monotonicity, breaker
// legality), then re-run once more to verify byte-identical replay.
// The league table ranks strategies by savings × completion rate
// against the flat on-demand bill.
func Tournament(o Opts) (TournamentResult, error) {
	o = o.withDefaults()
	typ := instances.R3XLarge
	names := strategy.Names()
	spec := tournamentSpec(typ)
	ispec, err := instances.Lookup(typ)
	if err != nil {
		return TournamentResult{}, err
	}
	odCost := ispec.OnDemand * float64(spec.Exec)

	// Flatten the strategy×rate grid; the seed depends on the strategy
	// index and run only, so every strategy faces the same traces and
	// submission offsets at every rate — the rate knob is isolated.
	type cell struct {
		si   int
		name string
		rate float64
	}
	var cells []cell
	for si, name := range names {
		for _, rate := range tournamentRates {
			cells = append(cells, cell{si: si, name: name, rate: rate})
		}
	}
	type runResult struct {
		rep    client.Report
		faults chaos.Stats
		err    error
	}
	type auditResult struct {
		violations []invariant.Violation
		replayOK   bool
		err        error
	}
	results := make([][]runResult, len(cells))
	audits := make([]auditResult, len(cells))
	var regs [][]*obs.Registry
	if o.Metrics != nil {
		regs = make([][]*obs.Registry, len(cells))
	}
	cellOffs := make([][]int, len(cells))
	for ci, c := range cells {
		results[ci] = make([]runResult, o.Runs)
		cellOffs[ci] = offsets(o.Runs, o.Seed+int64(c.si))
		if regs != nil {
			regs[ci] = make([]*obs.Registry, o.Runs)
			for run := range regs[ci] {
				regs[ci][run] = obs.New()
			}
		}
	}
	var traced func(int) bool
	if o.Trace != nil {
		traced = func(int) bool { return true }
	}
	err = forEachCellRun(len(cells), o.Runs, traced, func(ci, run int) error {
		c := cells[ci]
		seed := o.Seed + int64(c.si)*2003 + int64(run)*7919
		var met *obs.Registry
		if regs != nil {
			met = regs[ci][run]
		}
		var rec *event.Recorder
		if run == 0 {
			rec = o.Trace
		}
		rep, st, _, err := tournamentRun(typ, c.name, c.rate, seed, cellOffs[ci][run], o.Days, met, rec)
		// A client that cannot start its job at all is a data point,
		// not an experiment failure.
		results[ci][run] = runResult{rep: rep, faults: st, err: err}
		if run != 0 {
			return nil
		}
		// Audit + replay: two more private-recorder runs of the same
		// seed. Their violations and fingerprints are deterministic, so
		// running them inside the worker is scheduling-independent.
		a, aerr := tournamentAudit(typ, c.name, c.rate, seed, cellOffs[ci][0], o.Days)
		if aerr != nil {
			audits[ci] = auditResult{err: aerr}
			return nil
		}
		b, berr := tournamentAudit(typ, c.name, c.rate, seed, cellOffs[ci][0], o.Days)
		if berr != nil {
			audits[ci] = auditResult{err: berr}
			return nil
		}
		vs := auditViolations(c.name, a)
		audits[ci] = auditResult{
			violations: vs,
			replayOK:   len(invariant.CompareReplay(a, b)) == 0,
		}
		return nil
	})
	if err != nil {
		return TournamentResult{}, err
	}

	rows := make(map[string]*TournamentRow, len(names))
	for _, name := range names {
		info, _ := strategy.Lookup(name)
		rows[name] = &TournamentRow{Strategy: name, Guarantees: info.GuaranteesCompletion, ReplayOK: true}
	}
	for ci, c := range cells {
		if regs != nil {
			for _, reg := range regs[ci] {
				if err := o.Metrics.Merge(reg.Snapshot()); err != nil {
					return TournamentResult{}, fmt.Errorf("experiments: merging tournament run metrics: %w", err)
				}
			}
		}
		cellRow := TournamentCell{Strategy: c.name, Rate: c.rate, Runs: o.Runs}
		var cost, compl, savings float64
		for _, r := range results[ci] {
			cellRow.Faults += r.faults.Total()
			if r.err != nil {
				cellRow.Errored++
				continue
			}
			if r.rep.Telemetry.FellBackOnDemand {
				cellRow.FellBack++
			}
			if !r.rep.Outcome.Completed {
				continue
			}
			cellRow.Completed++
			cost += r.rep.Outcome.Cost
			compl += float64(r.rep.Outcome.Completion)
			savings += 1 - r.rep.Outcome.Cost/odCost
			cellRow.Interruptions += r.rep.Outcome.Interruptions
			cellRow.Rebids += r.rep.Telemetry.Rebids
		}
		if cellRow.Completed > 0 {
			cellRow.MeanCost = cost / float64(cellRow.Completed)
			cellRow.MeanSavings = savings / float64(cellRow.Completed)
			cellRow.MeanCompletion = timeslot.Hours(compl / float64(cellRow.Completed))
		}
		au := audits[ci]
		if au.err != nil {
			// The audit could not even run (the seed-0 run errored):
			// surface it as a violation rather than silently passing.
			au.violations = []invariant.Violation{{Checker: "audit", Slot: -1,
				Detail: fmt.Sprintf("audit run failed: %v", au.err)}}
		}
		cellRow.Violations = au.violations
		cellRow.ReplayOK = au.err == nil && au.replayOK
		o.Metrics.Counter("experiments.tournament.runs").Add(int64(cellRow.Runs))
		o.Metrics.Counter("experiments.tournament.completed").Add(int64(cellRow.Completed))
		o.Metrics.Counter("experiments.tournament.violations").Add(int64(len(cellRow.Violations)))

		row := rows[c.name]
		row.Cells = append(row.Cells, cellRow)
		row.Errored += cellRow.Errored
		row.Interruptions += cellRow.Interruptions
		row.Rebids += cellRow.Rebids
		row.FellBack += cellRow.FellBack
		row.Violations += len(cellRow.Violations)
		row.ReplayOK = row.ReplayOK && cellRow.ReplayOK
	}

	var res TournamentResult
	res.OnDemandCost = odCost
	for _, name := range names {
		row := rows[name]
		var cost, compl, savings float64
		var completed, runs int
		for _, cellRow := range row.Cells {
			runs += cellRow.Runs
			completed += cellRow.Completed
			cost += cellRow.MeanCost * float64(cellRow.Completed)
			compl += float64(cellRow.MeanCompletion) * float64(cellRow.Completed)
			savings += cellRow.MeanSavings * float64(cellRow.Completed)
		}
		if completed > 0 {
			row.MeanCost = cost / float64(completed)
			row.Savings = savings / float64(completed)
			row.MeanCompletion = timeslot.Hours(compl / float64(completed))
		}
		if runs > 0 {
			row.CompletionRate = float64(completed) / float64(runs)
		}
		row.Score = row.Savings * row.CompletionRate
		res.Rows = append(res.Rows, *row)
	}
	sort.SliceStable(res.Rows, func(i, j int) bool {
		if res.Rows[i].Score != res.Rows[j].Score {
			return res.Rows[i].Score > res.Rows[j].Score
		}
		return res.Rows[i].Strategy < res.Rows[j].Strategy
	})
	for i := range res.Rows {
		res.Rows[i].Rank = i + 1
	}
	return res, nil
}

// Row returns the named strategy's league line, or false.
func (r TournamentResult) Row(name string) (TournamentRow, bool) {
	for _, row := range r.Rows {
		if row.Strategy == name {
			return row, true
		}
	}
	return TournamentRow{}, false
}

// Render returns the ranked league table as aligned text.
func (r TournamentResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		replay := "ok"
		if !row.ReplayOK {
			replay = "DIVERGED"
		}
		rows[i] = []string{
			fmt.Sprintf("%d", row.Rank), row.Strategy,
			fmt.Sprintf("%.3f", row.Score), pct(row.Savings),
			fmt.Sprintf("%.0f%%", 100*row.CompletionRate),
			f4(row.MeanCost), f2(float64(row.MeanCompletion)),
			fmt.Sprintf("%d", row.Interruptions), fmt.Sprintf("%d", row.Rebids),
			fmt.Sprintf("%d", row.FellBack),
			fmt.Sprintf("%d", row.Violations), replay,
		}
	}
	return Table([]string{"rank", "strategy", "score", "savings", "completed",
		"cost", "compl(h)", "intr", "rebids", "od-fallback", "violations", "replay"}, rows)
}
