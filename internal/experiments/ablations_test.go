package experiments

import (
	"strings"
	"testing"
)

func TestAblationBeta(t *testing.T) {
	res, err := AblationBeta(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// §4.1: higher β ⇒ lower price and more accepted bids at the
	// same load.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Beta <= res.Rows[i-1].Beta {
			t.Fatal("β not increasing")
		}
		if res.Rows[i].Price > res.Rows[i-1].Price+1e-12 {
			t.Errorf("price rose with β: %v → %v", res.Rows[i-1].Price, res.Rows[i].Price)
		}
		if res.Rows[i].Accepted < res.Rows[i-1].Accepted-1e-9 {
			t.Errorf("accepted fell with β: %v → %v", res.Rows[i-1].Accepted, res.Rows[i].Accepted)
		}
	}
	// The equilibrium price mean drops as utilization gains weight.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.EqMean >= first.EqMean {
		t.Errorf("raising β did not lower the equilibrium mean: %v → %v", first.EqMean, last.EqMean)
	}
	if !strings.Contains(res.Render(), "β scale") {
		t.Error("render missing columns")
	}
}

func TestAblationRecovery(t *testing.T) {
	res, err := AblationRecovery(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Bids are non-decreasing in t_r while feasible.
	prevBid := 0.0
	feasibleSeen := 0
	for _, row := range res.Rows {
		if !row.Feasible {
			continue
		}
		feasibleSeen++
		if row.Bid < prevBid-1e-9 {
			t.Errorf("bid fell with larger t_r: %v after %v", row.Bid, prevBid)
		}
		prevBid = row.Bid
	}
	if feasibleSeen < 4 {
		t.Errorf("only %d feasible rows", feasibleSeen)
	}
	// Eq. 14's minimum acceptance probability kicks in past t_k and
	// grows toward 1.
	last := res.Rows[len(res.Rows)-1]
	if last.MinAcceptProb < 0.7 {
		t.Errorf("20-minute recovery min F(p) = %v", last.MinAcceptProb)
	}
	if !strings.Contains(res.Render(), "min F(p)") {
		t.Error("render missing columns")
	}
}

func TestAblationDwell(t *testing.T) {
	res, err := AblationDwell(Opts{Seed: 1, Runs: 6, Days: 63})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The DESIGN.md stickiness claim: i.i.d. prices (dwell 1) break
	// the Prop. 4 reliability result; realistic dwell restores it.
	iid := res.Rows[0]
	if iid.DwellSlots != 1 {
		t.Fatal("first row should be dwell 1")
	}
	if iid.OneTimeFailures < iid.Runs/3 {
		t.Errorf("i.i.d. prices failed only %d/%d one-time runs — expected ≫ 0", iid.OneTimeFailures, iid.Runs)
	}
	sticky := res.Rows[len(res.Rows)-1]
	if sticky.OneTimeFailures > iid.OneTimeFailures {
		t.Errorf("stickiness did not reduce failures: %d vs %d", sticky.OneTimeFailures, iid.OneTimeFailures)
	}
	// Persistent interruptions also drop with stickiness.
	if sticky.MeanInterruptions > iid.MeanInterruptions {
		t.Errorf("interruptions rose with dwell: %v vs %v", sticky.MeanInterruptions, iid.MeanInterruptions)
	}
	if !strings.Contains(res.Render(), "one-time failures") {
		t.Error("render missing columns")
	}
}

func TestAblationWorkers(t *testing.T) {
	res, err := AblationWorkers(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Completion shrinks monotonically with M.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Completion > res.Rows[i-1].Completion {
			t.Fatalf("completion grew at M=%d", res.Rows[i].Workers)
		}
	}
	// §6.1's cheaper-condition t_o < (M−1)t_r is strict: it first
	// holds at M = 4 for t_o = 60s, t_r = 30s ((4−1)·30 > 60).
	for _, row := range res.Rows {
		want := row.Workers >= 4
		if row.CheaperOK != want {
			t.Errorf("M=%d: cheaper condition = %v, want %v", row.Workers, row.CheaperOK, want)
		}
	}
	if !strings.Contains(res.Render(), "speedup") {
		t.Error("render missing columns")
	}
}

func TestAblationCollective(t *testing.T) {
	res, err := AblationCollective(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// §8: with no optimizers the provider prices below p* (the bid
	// wins); as the optimizing share grows the best-response price
	// climbs (weakly) toward the mass point.
	if !res.Rows[0].BidStillWins {
		t.Error("lone optimizer should win at share 0")
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].ProviderPrice < res.Rows[i-1].ProviderPrice-1e-6 {
			t.Errorf("provider price fell as optimizer share grew: %v → %v",
				res.Rows[i-1].ProviderPrice, res.Rows[i].ProviderPrice)
		}
	}
	last := res.Rows[len(res.Rows)-1]
	if last.ProviderPrice < res.UserBid-1e-3 {
		t.Errorf("at 95%% optimizers the price %v should reach the mass point %v",
			last.ProviderPrice, res.UserBid)
	}
	if !strings.Contains(res.Render(), "optimizer share") {
		t.Error("render missing columns")
	}
}

func TestForecastEval(t *testing.T) {
	res, err := ForecastEval(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// §5's claim: at a half-day horizon every predictor's RMSE is
	// within a whisker of the unconditional σ (no usable signal),
	// while one-slot-ahead forecasts do much better.
	for _, row := range res.Rows {
		switch row.HorizonSlots {
		case 1:
			if row.Predictor == "naive" && row.RMSEOverSigma > 0.6 {
				t.Errorf("naive 1-slot RMSE/σ = %v, expected strong short-range signal", row.RMSEOverSigma)
			}
		case 144:
			if row.RMSEOverSigma < 0.75 {
				t.Errorf("%s half-day RMSE/σ = %v — §5 expects ≈1", row.Predictor, row.RMSEOverSigma)
			}
		}
	}
	if !strings.Contains(res.Render(), "RMSE/σ") {
		t.Error("render missing columns")
	}
}

func TestAblationBilling(t *testing.T) {
	res, err := AblationBilling(Opts{Seed: 1, Runs: 4, Days: 63})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		switch row.Strategy {
		case "one-time", "persistent-30":
			// The refund rule only forgives: hourly ≤ per-slot.
			if row.Ratio > 1.0+1e-9 {
				t.Errorf("%s: hourly/per-slot = %v > 1", row.Strategy, row.Ratio)
			}
		case "on-demand":
			// User-terminated partial hours round UP: hourly ≥ per-slot.
			if row.Ratio < 1.0-1e-9 {
				t.Errorf("on-demand: hourly/per-slot = %v < 1", row.Ratio)
			}
		}
		if row.PerSlotCost <= 0 || row.HourlyCost <= 0 {
			t.Errorf("%s: non-positive costs %v / %v", row.Strategy, row.PerSlotCost, row.HourlyCost)
		}
	}
	if !strings.Contains(res.Render(), "hourly/per-slot") {
		t.Error("render missing columns")
	}
}
