// Package experiments regenerates every table and figure of the
// paper's evaluation (§4.3, §7) against the simulated substrate:
//
//	Figure3  — spot-price PDFs + Pareto/exponential fits (§4.3)
//	Table3   — optimal bid prices per instance type (§7.1)
//	Figure4  — an example job timeline with interruptions
//	Figure5  — one-time spot vs on-demand cost
//	Figure6  — persistent vs one-time: price, completion, cost
//	Table4   — MapReduce client settings, bids, minimum M, cost split
//	Figure7  — MapReduce completion time and cost vs on-demand
//	Stability— Prop. 1/2: queue boundedness and equilibrium prices
//
// Each experiment returns typed rows plus a Render() text table; the
// cmd/experiments binary and the repository benchmarks drive these
// functions, and EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/cloud"
	"repro/internal/instances"
	"repro/internal/obs"
	"repro/internal/obs/event"
	"repro/internal/obs/tsdb"
	"repro/internal/trace"
)

// Opts tunes an experiment run.
type Opts struct {
	// Seed drives all randomness (default 1).
	Seed int64
	// Runs is the number of repetitions per configuration where the
	// paper repeats ("each experiment ten times", §7) — default 10.
	Runs int
	// Days is the trace length backing each run (default 63: two
	// months of history plus room for the job itself).
	Days int
	// Metrics, when non-nil, aggregates observability data across the
	// experiment: parallel repetitions record into private registries
	// that are merged here in run order after every repetition
	// finishes, so the aggregate is deterministic regardless of
	// worker scheduling. Nil — the default — records nothing and
	// changes no behavior.
	Metrics *obs.Registry
	// Trace, when non-nil, is the flight recorder threaded through the
	// experiment. Sweeps that repeat a cell in parallel (ChaosSweep,
	// FailoverSweep) instrument ONLY run index 0 of each cell: that
	// run's emissions are sequential within its own goroutine and cells
	// execute in order, so the recorded stream is deterministic — one
	// seed, one byte sequence per export format — regardless of worker
	// scheduling. Table3 records every trace generation. Nil — the
	// default — records nothing and changes no behavior.
	Trace *event.Recorder
	// TSDB, when non-nil, is the time-series store the experiment
	// scrapes into. Under the same run-0-only discipline as Trace (and
	// serialized the same way), the instrumented run's registry and
	// derived signals — breaker states, per-region health, per-cell
	// savings — are sampled every ScrapeEvery slots with the cell's
	// identity as labels, so one sweep yields one byte-stable dump.
	TSDB *tsdb.DB
	// ScrapeEvery is the scrape cadence in slots (default 144 for the
	// multi-day sweeps; serve drills default to 4 on their own).
	ScrapeEvery int
}

func (o Opts) withDefaults() Opts {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Runs == 0 {
		o.Runs = 10
	}
	if o.Days == 0 {
		o.Days = 63
	}
	if o.ScrapeEvery <= 0 {
		o.ScrapeEvery = 144
	}
	return o
}

// historySlots is the two-month price-monitor window in slots.
const historySlots = 61 * 288

// regionFor builds a region with generated traces for the given
// instance types (deduplicated), all driven from one base seed.
func regionFor(types []instances.Type, seed int64, days int) (*cloud.Region, error) {
	seen := map[instances.Type]bool{}
	var traces []*trace.Trace
	for i, t := range types {
		if seen[t] {
			continue
		}
		seen[t] = true
		tr, err := trace.Generate(t, trace.GenOptions{Days: days, Seed: seed + int64(i)*1009})
		if err != nil {
			return nil, err
		}
		traces = append(traces, tr)
	}
	return cloud.NewRegion(traces...)
}

// cloudRegion wraps a single pre-generated trace in a region.
func cloudRegion(tr *trace.Trace) (*cloud.Region, error) {
	return cloud.NewRegion(tr)
}

// offsets returns n deterministic submission offsets within one day
// (in slots) — the paper submits "at random times of the day" (§7.1).
func offsets(n int, seed int64) []int {
	r := rand.New(rand.NewSource(seed ^ 0x5eed))
	out := make([]int, n)
	for i := range out {
		out[i] = r.Intn(288)
	}
	return out
}

// Table renders an aligned text table.
func Table(headers []string, rows [][]string) string {
	width := make([]int, len(headers))
	for i, h := range headers {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// f4 formats a price with four decimals (the paper's bid precision).
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }

// f2 formats a generic value with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// pct formats a ratio as a signed percentage.
func pct(x float64) string { return fmt.Sprintf("%+.1f%%", 100*x) }
