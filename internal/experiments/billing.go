package experiments

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/cloud"
	"repro/internal/instances"
	"repro/internal/job"
	"repro/internal/timeslot"
	"repro/internal/trace"
)

// BillingRow compares one strategy's measured cost under the paper's
// per-slot billing model and Amazon's real hourly rules (rate locked
// at the top of the hour, provider-terminated partial hours free).
type BillingRow struct {
	Strategy string
	// PerSlotCost and HourlyCost are mean measured costs over Runs.
	PerSlotCost, HourlyCost float64
	// Ratio is HourlyCost / PerSlotCost.
	Ratio float64
	Runs  int
}

// BillingResult is the billing-model ablation.
type BillingResult struct{ Rows []BillingRow }

// AblationBilling quantifies how far the paper's per-slot cost model
// (the continuous limit behind Eq. 9/13) sits from Amazon's actual
// 2014 billing: identical traces, identical bids, different meters.
// The refund rule can only lower spot bills, so hourly/per-slot ≤ 1
// for spot strategies (exactly 1 on interruption-free whole hours).
func AblationBilling(o Opts) (BillingResult, error) {
	o = o.withDefaults()
	var res BillingResult
	for _, strategy := range []string{"one-time", "persistent-30", "on-demand"} {
		var perSlot, hourly float64
		var n int
		for run := 0; run < o.Runs; run++ {
			seed := o.Seed + int64(run)*7919
			tr, err := trace.Generate(instances.R3XLarge, trace.GenOptions{Days: o.Days, Seed: seed})
			if err != nil {
				return BillingResult{}, err
			}
			a, err := runBilled(tr, strategy, cloud.PerSlot)
			if err != nil {
				return BillingResult{}, err
			}
			b, err := runBilled(tr, strategy, cloud.Hourly)
			if err != nil {
				return BillingResult{}, err
			}
			if !a.Outcome.Completed || !b.Outcome.Completed {
				continue // identical traces: both or neither, typically
			}
			perSlot += a.Outcome.Cost
			hourly += b.Outcome.Cost
			n++
		}
		if n == 0 {
			return BillingResult{}, fmt.Errorf("experiments: no completed billing pairs for %s", strategy)
		}
		row := BillingRow{
			Strategy:    strategy,
			PerSlotCost: perSlot / float64(n),
			HourlyCost:  hourly / float64(n),
			Runs:        n,
		}
		if row.PerSlotCost > 0 {
			row.Ratio = row.HourlyCost / row.PerSlotCost
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runBilled runs one 1-hour job on a fresh region with the given
// billing mode.
func runBilled(tr *trace.Trace, strategy string, mode cloud.BillingMode) (client.Report, error) {
	region, err := cloudRegion(tr)
	if err != nil {
		return client.Report{}, err
	}
	if err := region.SetBilling(mode); err != nil {
		return client.Report{}, err
	}
	cl, err := client.New(region)
	if err != nil {
		return client.Report{}, err
	}
	if err := cl.Skip(historySlots); err != nil {
		return client.Report{}, err
	}
	spec := job.Spec{ID: "bill", Type: tr.Type, Exec: 1}
	switch strategy {
	case "one-time":
		return cl.RunOneTime(spec)
	case "persistent-30":
		spec.Recovery = timeslot.Seconds(30)
		return cl.RunPersistent(spec)
	case "on-demand":
		return cl.RunOnDemand(spec)
	default:
		return client.Report{}, fmt.Errorf("experiments: unknown strategy %q", strategy)
	}
}

// Render returns the ablation as an aligned text table.
func (r BillingResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Strategy, f4(row.PerSlotCost), f4(row.HourlyCost),
			fmt.Sprintf("%.3f", row.Ratio), fmt.Sprintf("%d", row.Runs),
		}
	}
	return Table([]string{"strategy", "per-slot cost", "hourly cost", "hourly/per-slot", "runs"}, rows)
}
