package experiments

import (
	"errors"
	"fmt"

	"repro/internal/client"
	"repro/internal/cloud"
	"repro/internal/instances"
	"repro/internal/job"
	"repro/internal/timeslot"
)

// singleRun executes one single-instance job under one strategy on a
// fresh region, submitted offset slots into the day after a two-month
// history window.
func singleRun(typ instances.Type, strategy string, seed int64, offset, days int) (client.Report, error) {
	region, err := regionFor([]instances.Type{typ}, seed, days)
	if err != nil {
		return client.Report{}, err
	}
	cl, err := client.New(region)
	if err != nil {
		return client.Report{}, err
	}
	if err := cl.Skip(historySlots + offset); err != nil {
		return client.Report{}, err
	}
	spec := job.Spec{ID: "exp-job", Type: typ, Exec: 1}
	switch strategy {
	case "one-time":
		return cl.RunOneTime(spec)
	case "persistent-10":
		spec.Recovery = timeslot.Seconds(10)
		return cl.RunPersistent(spec)
	case "persistent-30":
		spec.Recovery = timeslot.Seconds(30)
		return cl.RunPersistent(spec)
	case "percentile-90":
		spec.Recovery = timeslot.Seconds(30)
		return cl.RunPercentile(spec, 90, cloud.Persistent)
	case "best-offline":
		hist, err := region.PriceHistory(typ, timeslot.Hours(10))
		if err != nil {
			return client.Report{}, err
		}
		best, err := hist.BestOfflinePrice(1)
		if err != nil {
			return client.Report{}, err
		}
		return cl.RunFixedBid("best-offline", spec, best, cloud.OneTime)
	case "on-demand":
		return cl.RunOnDemand(spec)
	default:
		return client.Report{}, fmt.Errorf("experiments: unknown strategy %q", strategy)
	}
}

// Fig5Row is one instance type of Figure 5: one-time spot vs
// on-demand cost for a one-hour job, averaged over Runs repetitions.
type Fig5Row struct {
	Type instances.Type
	// AnalyticCost is the model's expected cost at the Prop. 4 bid.
	AnalyticCost float64
	// MeasuredCost is the mean billed cost across completed runs.
	MeasuredCost float64
	// OnDemandCost is the π̄ baseline for the same job.
	OnDemandCost float64
	// Savings is 1 − measured/on-demand (the paper: up to 91%).
	Savings float64
	// Interrupted counts one-time runs that were out-bid (the paper
	// observed none).
	Interrupted int
	// BestOfflineCost is the mean cost under the retrospective
	// baseline's bid, counting only its completed runs.
	BestOfflineCost float64
	// BestOfflineFailed counts baseline runs terminated early — the
	// §7.1 observation that 10 hours of history underbids the future.
	BestOfflineFailed int
	// Runs is the repetition count.
	Runs int
}

// Fig5Result is the Figure 5 reproduction.
type Fig5Result struct{ Rows []Fig5Row }

// Figure5 reruns the §7.1 one-time experiments: ten one-hour jobs per
// type at random times of day, billed on the simulated cloud.
func Figure5(o Opts) (Fig5Result, error) {
	o = o.withDefaults()
	types := instances.Table3Types()
	// Repetitions are independent (private regions); every (type, run)
	// pair goes through one shared worker pool, with aggregation in
	// cell order afterwards.
	type runResult struct {
		rep, bo client.Report
	}
	results := make([][]runResult, len(types))
	cellOffs := make([][]int, len(types))
	for ti := range types {
		results[ti] = make([]runResult, o.Runs)
		cellOffs[ti] = offsets(o.Runs, o.Seed+int64(ti))
	}
	err := forEachCellRun(len(types), o.Runs, nil, func(ti, run int) error {
		typ := types[ti]
		seed := o.Seed + int64(ti)*1013 + int64(run)*7919
		rep, err := singleRun(typ, "one-time", seed, cellOffs[ti][run], o.Days)
		if err != nil {
			return err
		}
		bo, err := singleRun(typ, "best-offline", seed, cellOffs[ti][run], o.Days)
		if err != nil {
			return err
		}
		results[ti][run] = runResult{rep: rep, bo: bo}
		return nil
	})
	if err != nil {
		return Fig5Result{}, err
	}
	var res Fig5Result
	for ti, typ := range types {
		row := Fig5Row{Type: typ, Runs: o.Runs}
		var measured, analytic, offline float64
		var completed, offlineDone int
		for _, r := range results[ti] {
			if r.rep.Outcome.Completed {
				completed++
				measured += r.rep.Outcome.Cost
				analytic += r.rep.Analytic.ExpectedCost
			} else {
				row.Interrupted++
			}
			if r.bo.Outcome.Completed {
				offlineDone++
				offline += r.bo.Outcome.Cost
			} else {
				row.BestOfflineFailed++
			}
		}
		if completed == 0 {
			return Fig5Result{}, errors.New("experiments: every one-time run was interrupted")
		}
		spec := instances.MustLookup(typ)
		row.MeasuredCost = measured / float64(completed)
		row.AnalyticCost = analytic / float64(completed)
		row.OnDemandCost = spec.OnDemand // one-hour job
		row.Savings = 1 - row.MeasuredCost/row.OnDemandCost
		if offlineDone > 0 {
			row.BestOfflineCost = offline / float64(offlineDone)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render returns the result as an aligned text table.
func (r Fig5Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			string(row.Type), f4(row.AnalyticCost), f4(row.MeasuredCost),
			f4(row.OnDemandCost), pct(row.Savings),
			fmt.Sprintf("%d/%d", row.Interrupted, row.Runs),
			f4(row.BestOfflineCost),
			fmt.Sprintf("%d/%d", row.BestOfflineFailed, row.Runs),
		}
	}
	return Table([]string{"type", "analytic", "measured", "on-demand", "savings", "interrupted", "best-offline", "bo-failed"}, rows)
}

// citizenReport pairs a report with its validity for the paired
// aggregation.
type citizenReport struct {
	client.Report
	ok bool
}

// Fig6Row is one (type, strategy) cell of Figure 6: percentage
// differences of a persistent-style strategy versus the one-time
// baseline on the same traces.
type Fig6Row struct {
	Type     instances.Type
	Strategy string
	// BidPrice is the strategy's mean bid.
	BidPrice float64
	// PriceDiff is the mean % difference in price paid per running
	// hour (Fig. 6a; negative = cheaper per hour).
	PriceDiff float64
	// CompletionDiff is the mean % difference in completion time
	// (Fig. 6b; positive = slower).
	CompletionDiff float64
	// CostDiff is the mean % difference in total job cost (Fig. 6c;
	// negative = cheaper).
	CostDiff float64
	// Interruptions is the mean interruption count per run.
	Interruptions float64
	// Runs counts the paired repetitions that completed.
	Runs int
}

// Fig6Result is the Figure 6 reproduction.
type Fig6Result struct{ Rows []Fig6Row }

// fig6Strategies are the Fig. 6 comparison arms.
var fig6Strategies = []string{"persistent-10", "persistent-30", "percentile-90"}

// Figure6 reruns the §7.1 persistent-vs-one-time comparison: for each
// type and strategy, paired runs on identical traces, reporting the
// percentage differences of Fig. 6(a–c).
func Figure6(o Opts) (Fig6Result, error) {
	o = o.withDefaults()
	types := instances.Table3Types()
	type pair struct {
		base citizenReport
		arms map[string]citizenReport
	}
	pairs := make([][]pair, len(types))
	cellOffs := make([][]int, len(types))
	for ti := range types {
		pairs[ti] = make([]pair, o.Runs)
		cellOffs[ti] = offsets(o.Runs, o.Seed+int64(ti))
	}
	err := forEachCellRun(len(types), o.Runs, nil, func(ti, run int) error {
		typ := types[ti]
		seed := o.Seed + int64(ti)*1013 + int64(run)*7919
		base, err := singleRun(typ, "one-time", seed, cellOffs[ti][run], o.Days)
		if err != nil {
			return err
		}
		p := pair{base: citizenReport{base, true}, arms: make(map[string]citizenReport, len(fig6Strategies))}
		if !base.Outcome.Completed {
			p.base.ok = false // the paper's baseline never failed; skip the pair
			pairs[ti][run] = p
			return nil
		}
		for _, s := range fig6Strategies {
			rep, err := singleRun(typ, s, seed, cellOffs[ti][run], o.Days)
			if err != nil {
				return err
			}
			p.arms[s] = citizenReport{rep, rep.Outcome.Completed}
		}
		pairs[ti][run] = p
		return nil
	})
	if err != nil {
		return Fig6Result{}, err
	}
	var res Fig6Result
	for ti, typ := range types {
		type acc struct {
			bid, price, compl, cost, inter float64
			n                              int
		}
		accs := make(map[string]*acc, len(fig6Strategies))
		for _, s := range fig6Strategies {
			accs[s] = &acc{}
		}
		for _, p := range pairs[ti] {
			if !p.base.ok {
				continue
			}
			base := p.base.Report
			for _, s := range fig6Strategies {
				arm, ok := p.arms[s]
				if !ok || !arm.ok {
					continue
				}
				rep := arm.Report
				a := accs[s]
				a.n++
				a.bid += rep.BidPrice
				a.price += rep.Outcome.PricePerRunHour/base.Outcome.PricePerRunHour - 1
				a.compl += float64(rep.Outcome.Completion)/float64(base.Outcome.Completion) - 1
				a.cost += rep.Outcome.Cost/base.Outcome.Cost - 1
				a.inter += float64(rep.Outcome.Interruptions)
			}
		}
		for _, s := range fig6Strategies {
			a := accs[s]
			if a.n == 0 {
				return Fig6Result{}, fmt.Errorf("experiments: no completed pairs for %s/%s", typ, s)
			}
			n := float64(a.n)
			res.Rows = append(res.Rows, Fig6Row{
				Type:           typ,
				Strategy:       s,
				BidPrice:       a.bid / n,
				PriceDiff:      a.price / n,
				CompletionDiff: a.compl / n,
				CostDiff:       a.cost / n,
				Interruptions:  a.inter / n,
				Runs:           a.n,
			})
		}
	}
	return res, nil
}

// Row returns the (type, strategy) row, or false.
func (r Fig6Result) Row(typ instances.Type, strategy string) (Fig6Row, bool) {
	for _, row := range r.Rows {
		if row.Type == typ && row.Strategy == strategy {
			return row, true
		}
	}
	return Fig6Row{}, false
}

// Render returns the result as an aligned text table.
func (r Fig6Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			string(row.Type), row.Strategy, f4(row.BidPrice),
			pct(row.PriceDiff), pct(row.CompletionDiff), pct(row.CostDiff),
			f2(row.Interruptions), fmt.Sprintf("%d", row.Runs),
		}
	}
	return Table([]string{"type", "strategy", "bid", "Δprice/h", "Δcompletion", "Δcost", "interruptions", "runs"}, rows)
}
