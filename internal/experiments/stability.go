package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/arrivals"
	"repro/internal/instances"
	"repro/internal/market"
	"repro/internal/stats"
	"repro/internal/trace"
)

// StabilityRow validates Prop. 1/2 for one instance type's market:
// the full queue dynamics stay bounded, hover near the equilibrium
// load, and produce prices whose mean matches the i.i.d. equilibrium
// model.
type StabilityRow struct {
	Type instances.Type
	// MeanLoad and MaxLoad summarize the simulated queue L(t).
	MeanLoad, MaxLoad float64
	// EquilibriumLoad is Eq. 21's balance point at the mean arrival
	// volume.
	EquilibriumLoad float64
	// Threshold is the load beyond which the quadratic drift bound
	// is negative (Prop. 1); bounded queues stay mostly below it.
	Threshold float64
	// FracAboveThreshold is the fraction of slots with
	// L(t) > Threshold (small for a stable queue).
	FracAboveThreshold float64
	// SimPriceMean and EqPriceMean compare the full-dynamics price
	// mean with the analytic equilibrium mean.
	SimPriceMean, EqPriceMean float64
	// SimAutocorr1 and EqAutocorr1 are lag-1 price autocorrelations:
	// the queue gives the full dynamics memory, the equilibrium
	// model is white (§8's temporal-correlation discussion).
	SimAutocorr1, EqAutocorr1 float64
}

// StabilityResult is the Prop. 1/2 validation.
type StabilityResult struct {
	Rows []StabilityRow
	// Slots is the simulated horizon per type.
	Slots int
}

// Stability simulates the full queue dynamics (Fig. 2) per type and
// checks the boundedness and equilibrium claims of §4.2.
func Stability(o Opts) (StabilityResult, error) {
	o = o.withDefaults()
	const slots = 20000
	res := StabilityResult{Slots: slots}
	for i, typ := range instances.Figure3Types() {
		cal, err := trace.CalibrationFor(typ)
		if err != nil {
			return StabilityResult{}, err
		}
		arr, err := cal.ArrivalDist()
		if err != nil {
			return StabilityResult{}, err
		}
		sim := market.Simulator{Provider: cal.Provider, Arrivals: arrivals.NewIID(arr), Warmup: 2000}
		out, err := sim.Run(slots, rand.New(rand.NewSource(o.Seed+int64(i)*43)))
		if err != nil {
			return StabilityResult{}, err
		}
		eq, err := cal.PriceDist()
		if err != nil {
			return StabilityResult{}, err
		}
		lambda, sigma := arr.Mean(), arr.Var()
		thr := cal.Provider.StabilityThreshold(lambda, sigma)
		var above int
		maxLoad := 0.0
		for _, l := range out.Loads {
			if l > thr {
				above++
			}
			if l > maxLoad {
				maxLoad = l
			}
		}
		// The i.i.d. equilibrium price series for the autocorrelation
		// comparison.
		eqPrices, err := market.EquilibriumPrices(cal.Provider, arrivals.NewIID(arr), slots,
			rand.New(rand.NewSource(o.Seed+int64(i)*43+1)))
		if err != nil {
			return StabilityResult{}, err
		}
		res.Rows = append(res.Rows, StabilityRow{
			Type:               typ,
			MeanLoad:           stats.Mean(out.Loads),
			MaxLoad:            maxLoad,
			EquilibriumLoad:    cal.Provider.EquilibriumLoad(lambda),
			Threshold:          thr,
			FracAboveThreshold: float64(above) / float64(len(out.Loads)),
			SimPriceMean:       stats.Mean(out.Prices),
			EqPriceMean:        eq.Mean(),
			SimAutocorr1:       stats.Autocorrelation(out.Prices, []int{1})[0],
			EqAutocorr1:        stats.Autocorrelation(eqPrices, []int{1})[0],
		})
	}
	return res, nil
}

// Render returns the result as an aligned text table.
func (r StabilityResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			string(row.Type),
			f2(row.MeanLoad), f2(row.MaxLoad), f2(row.EquilibriumLoad), f2(row.Threshold),
			fmt.Sprintf("%.3f", row.FracAboveThreshold),
			f4(row.SimPriceMean), f4(row.EqPriceMean),
			fmt.Sprintf("%.3f", row.SimAutocorr1), fmt.Sprintf("%.3f", row.EqAutocorr1),
		}
	}
	return Table([]string{"type", "mean-L", "max-L", "eq-L", "threshold", "frac>thr", "sim-π̄", "eq-π̄", "sim-ac1", "eq-ac1"}, rows)
}
