package experiments

import (
	"bytes"
	"testing"

	"repro/internal/client"
	"repro/internal/instances"
	"repro/internal/obs"
)

// runInstrumented executes one zero-fault-rate chaos run (the injector
// is armed but every rate is zero, so it must be behavior-preserving)
// with the given registry installed.
func runInstrumented(t *testing.T, met *obs.Registry) client.Report {
	t.Helper()
	rep, faults, err := chaosRun(instances.R3XLarge, "persistent-30", 0, 42, 17, 63, met, nil)
	if err != nil {
		t.Fatalf("chaosRun: %v", err)
	}
	if faults.Total() != 0 {
		t.Fatalf("zero-rate injector recorded %d faults", faults.Total())
	}
	if !rep.Outcome.Completed {
		t.Fatalf("zero-rate run did not complete")
	}
	return rep
}

// TestMetricsSnapshotDeterminism is the determinism guard: two runs
// with the same seed and a zero-rate fault injector must produce
// byte-identical metrics snapshots — no wall-clock, goroutine
// scheduling, or map iteration order may leak into the numbers.
func TestMetricsSnapshotDeterminism(t *testing.T) {
	regA, regB := obs.New(), obs.New()
	runInstrumented(t, regA)
	runInstrumented(t, regB)
	jsA, err := regA.Snapshot().JSON()
	if err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	jsB, err := regB.Snapshot().JSON()
	if err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	if !bytes.Equal(jsA, jsB) {
		t.Errorf("same seed produced different snapshots:\n--- A ---\n%s\n--- B ---\n%s", jsA, jsB)
	}
	// The snapshot must not be trivially empty, or the guard guards
	// nothing.
	snap := regA.Snapshot()
	if len(snap.Counters) == 0 || len(snap.Histograms) == 0 {
		t.Errorf("instrumented run recorded no metrics: %+v", snap)
	}
}

// TestMetricsAreObservationOnly checks that installing a registry
// changes nothing about the simulation itself: cost, completion, and
// interruption counts match a run with no registry installed
// (the Noop path the seed shipped with).
func TestMetricsAreObservationOnly(t *testing.T) {
	instr := runInstrumented(t, obs.New())
	plain := runInstrumented(t, nil)
	if plain.Telemetry.Metrics != nil {
		t.Errorf("uninstrumented run carries a metrics snapshot")
	}
	if instr.Telemetry.Metrics == nil {
		t.Errorf("instrumented run carries no metrics snapshot")
	}
	if instr.Outcome.Cost != plain.Outcome.Cost {
		t.Errorf("cost changed under instrumentation: %v vs %v", instr.Outcome.Cost, plain.Outcome.Cost)
	}
	if instr.Outcome.Completion != plain.Outcome.Completion {
		t.Errorf("completion changed under instrumentation: %v vs %v", instr.Outcome.Completion, plain.Outcome.Completion)
	}
	if instr.Outcome.Interruptions != plain.Outcome.Interruptions {
		t.Errorf("interruptions changed under instrumentation: %d vs %d", instr.Outcome.Interruptions, plain.Outcome.Interruptions)
	}
	if instr.BidPrice != plain.BidPrice {
		t.Errorf("bid changed under instrumentation: %v vs %v", instr.BidPrice, plain.BidPrice)
	}
}

// TestRegistrySharedAcrossRunner hammers one registry from the
// experiment runner's worker pool (the sharing pattern a per-sweep
// aggregate registry would see) and checks totals under -race.
func TestRegistrySharedAcrossRunner(t *testing.T) {
	reg := obs.New()
	const runs, perRun = 64, 1000
	err := forEachRun(runs, func(run int) error {
		c := reg.Counter("hammer.count")
		g := reg.Gauge("hammer.level")
		h := reg.Histogram("hammer.obs", obs.SlotBuckets)
		for i := 0; i < perRun; i++ {
			c.Inc()
			g.Add(1)
			h.Observe(float64(i % 7))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("forEachRun: %v", err)
	}
	const want = int64(runs * perRun)
	if got := reg.Counter("hammer.count").Value(); got != want {
		t.Errorf("counter = %d, want sequential sum %d", got, want)
	}
	// Adding 1.0 is exact in floating point, so even the gauge total
	// is schedule-independent.
	if got := reg.Gauge("hammer.level").Value(); got != float64(want) {
		t.Errorf("gauge = %v, want %v", got, float64(want))
	}
	if got := reg.Histogram("hammer.obs", obs.SlotBuckets).Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
}
