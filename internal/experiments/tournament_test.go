package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/event"
	"repro/internal/strategy"
)

// TestTournamentLeague runs the full grid at a smoke budget and checks
// the league's structural promises: every registered strategy ranked
// across every rate, zero invariant violations for the paper-optimal
// strategies, byte-identical replay everywhere, and an on-demand
// baseline that saves nothing by construction.
func TestTournamentLeague(t *testing.T) {
	res, err := Tournament(Opts{Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 7 {
		t.Fatalf("league ranks %d strategies, want ≥ 7", len(res.Rows))
	}
	if len(res.Rows) != len(strategy.Names()) {
		t.Errorf("league has %d rows, registry has %d strategies", len(res.Rows), len(strategy.Names()))
	}
	for i, row := range res.Rows {
		if row.Rank != i+1 {
			t.Errorf("row %d has rank %d", i, row.Rank)
		}
		if len(row.Cells) != len(tournamentRates) {
			t.Errorf("%s covers %d cells, want %d", row.Strategy, len(row.Cells), len(tournamentRates))
		}
		if !row.ReplayOK {
			t.Errorf("%s did not replay byte-identically", row.Strategy)
		}
		if i > 0 && res.Rows[i-1].Score < row.Score {
			t.Errorf("league not sorted: %s (%.3f) after %s (%.3f)",
				row.Strategy, row.Score, res.Rows[i-1].Strategy, res.Rows[i-1].Score)
		}
	}
	for _, name := range []string{"one-time", "persistent"} {
		row, ok := res.Row(name)
		if !ok {
			t.Fatalf("%s missing from the league", name)
		}
		if row.Violations != 0 {
			for _, c := range row.Cells {
				for _, v := range c.Violations {
					t.Errorf("%s rate %.2f: %s", name, c.Rate, v)
				}
			}
		}
	}
	// The paper-optimal strategies must reproduce the ≈90% saving in
	// their fault-free cells (under chaos the degraded-telemetry stall
	// watchdog legitimately converts persistent idling into on-demand
	// completion, so only the rate-0 cell pins the paper's number).
	for _, name := range []string{"one-time", "persistent"} {
		row, _ := res.Row(name)
		if len(row.Cells) == 0 || row.Cells[0].Rate != 0 {
			t.Fatalf("%s has no fault-free cell", name)
		}
		if clean := row.Cells[0]; !(clean.MeanSavings > 0.8) {
			t.Errorf("%s fault-free savings = %.3f, want > 0.8", name, clean.MeanSavings)
		}
	}
	// The adaptive engine must actually adapt: autospot's on-demand →
	// spot replacement is a rebid in every run.
	if row, _ := res.Row("autospot"); row.Rebids == 0 {
		t.Error("autospot never rebid — the adaptive path did not run")
	}
	if row, _ := res.Row("on-demand"); row.Savings > 0.01 || row.CompletionRate != 1 {
		t.Errorf("on-demand baseline: savings %.3f completion %.2f", row.Savings, row.CompletionRate)
	}
	if !strings.Contains(res.Render(), "rank") {
		t.Error("Render lost its header")
	}
}

// TestTournamentPreservesExperimentBytes pins the tournament to the
// repo's replay contract: the same seed produces a byte-identical
// league table, metrics snapshot, and flight-recorder JSONL export.
func TestTournamentPreservesExperimentBytes(t *testing.T) {
	run := func() (string, []byte, []byte) {
		met := obs.New()
		rec := event.NewRecorder(event.Config{Unbounded: true})
		res, err := Tournament(Opts{Runs: 1, Metrics: met, Trace: rec})
		if err != nil {
			t.Fatal(err)
		}
		snap, err := met.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return res.Render(), snap, buf.Bytes()
	}
	table1, snap1, trace1 := run()
	table2, snap2, trace2 := run()
	if table1 != table2 {
		t.Errorf("league table diverged:\n%s\nvs\n%s", table1, table2)
	}
	if !bytes.Equal(snap1, snap2) {
		t.Error("metrics snapshots diverged")
	}
	if !bytes.Equal(trace1, trace2) {
		t.Error("flight-recorder exports diverged")
	}
	if len(trace1) == 0 {
		t.Error("flight recorder captured nothing")
	}
}
