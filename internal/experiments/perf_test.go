package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/event"
	"repro/internal/trace"
)

// chaosObservation is one full sweep's observable record: the result
// struct, the merged metrics snapshot JSON, and the flight-recorder
// JSONL export.
type chaosObservation struct {
	res   ChaosResult
	snap  []byte
	jsonl []byte
}

// observeChaosSweep runs the seeded chaos sweep with fresh metrics and
// recorder and captures everything a caller could see.
func observeChaosSweep(t *testing.T, o Opts) chaosObservation {
	t.Helper()
	met := obs.New()
	rec := event.NewRecorder(event.Config{Unbounded: true})
	o.Metrics = met
	o.Trace = rec
	res, err := ChaosSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := met.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var jsonl bytes.Buffer
	if err := rec.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	return chaosObservation{res: res, snap: snap, jsonl: jsonl.Bytes()}
}

// TestCachingPreservesExperimentBytes is the PR's determinism guard:
// with the trace memo-cache on versus off, a fixed-seed experiment
// must produce a byte-identical report, metrics snapshot JSON, and
// flight-recorder export. Caching is a performance detail, never an
// observable one.
func TestCachingPreservesExperimentBytes(t *testing.T) {
	o := Opts{Seed: 5, Runs: 2, Days: 63}

	trace.SetMemoCapacity(0) // memo off: every generation runs the generator
	uncached := observeChaosSweep(t, o)
	trace.SetMemoCapacity(64) // memo on, sized to hold the sweep's traces
	defer trace.ResetMemo()
	cold := observeChaosSweep(t, o) // populates the cache
	warm := observeChaosSweep(t, o) // served from it

	for _, cached := range []struct {
		name string
		obs  chaosObservation
	}{{"cold cache", cold}, {"warm cache", warm}} {
		if !reflect.DeepEqual(uncached.res, cached.obs.res) {
			t.Fatalf("%s: sweep result differs from uncached run", cached.name)
		}
		if !bytes.Equal(uncached.snap, cached.obs.snap) {
			t.Fatalf("%s: metrics snapshot differs from uncached run:\nuncached %s\ncached   %s",
				cached.name, uncached.snap, cached.obs.snap)
		}
		if !bytes.Equal(uncached.jsonl, cached.obs.jsonl) {
			t.Fatalf("%s: flight-recorder export differs from uncached run", cached.name)
		}
	}
	if hits, _ := trace.MemoStats(); hits == 0 {
		t.Fatal("warm run never hit the cache — the guard is vacuous")
	}
}

// TestCachingPreservesFigure5 extends the guard to a figure pipeline
// that uses the incremental client monitor on every tick: cached and
// uncached runs must agree exactly.
func TestCachingPreservesFigure5(t *testing.T) {
	o := Opts{Seed: 9, Runs: 2, Days: 63}

	trace.SetMemoCapacity(0)
	uncached, err := Figure5(o)
	if err != nil {
		t.Fatal(err)
	}
	trace.SetMemoCapacity(64)
	defer trace.ResetMemo()
	cached, err := Figure5(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(uncached, cached) {
		t.Fatal("Figure5 result changed when trace caching was enabled")
	}
}
