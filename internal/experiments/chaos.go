package experiments

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/cloud"
	"repro/internal/instances"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/obs/event"
	"repro/internal/timeslot"
)

// chaosRates is the fault-intensity sweep: the chaos.Uniform knob from
// fault-free to a very bad day on EC2.
var chaosRates = []float64{0, 0.02, 0.05, 0.10}

// chaosStrategies are the bidding strategies stressed by the sweep.
var chaosStrategies = []string{"one-time", "persistent-30", "percentile-90"}

// ChaosRow is one (strategy, fault-rate) cell: how much of the
// paper's ≈90% saving survives a degraded market interface.
type ChaosRow struct {
	Strategy string
	// Rate is the chaos.Uniform fault intensity.
	Rate float64
	// Completed counts runs that finished all their work (on spot or
	// after an on-demand fallback); Errored counts runs the client
	// could not even start (e.g. no price history and no cached ECDF).
	Completed, Errored, Runs int
	// MeanCost and MeanCompletion average over completed runs.
	MeanCost       float64
	MeanCompletion timeslot.Hours
	// CostDegradation and CompletionDegradation compare against the
	// same strategy's fault-free (rate 0) row: +0.25 = 25% worse.
	CostDegradation, CompletionDegradation float64
	// FellBack counts runs that degraded to on-demand; StaleRuns
	// counts runs priced from a stale ECDF; Interruptions and
	// CheckpointFailures sum over completed runs.
	FellBack, StaleRuns, Interruptions, CheckpointFailures int
	// Faults is the total number of injected faults across all runs.
	Faults int
}

// ChaosResult is the degradation table of the chaos experiment.
type ChaosResult struct{ Rows []ChaosRow }

// chaosRun executes one job under one strategy on a fresh chaos-armed
// region. Runs are deterministic per seed: region trace, submission
// offset, and the entire fault sequence all derive from it.
func chaosRun(typ instances.Type, strategy string, rate float64, seed int64, offset, days int, met *obs.Registry, rec *event.Recorder) (client.Report, chaos.Stats, error) {
	region, err := regionFor([]instances.Type{typ}, seed, days)
	if err != nil {
		return client.Report{}, chaos.Stats{}, err
	}
	cl, err := client.New(region)
	if err != nil {
		return client.Report{}, chaos.Stats{}, err
	}
	if met != nil {
		cl.SetMetrics(met)
	}
	if rec != nil {
		cl.SetTrace(rec)
	}
	inj, err := chaos.New(chaos.Uniform(rate, seed*31+1))
	if err != nil {
		return client.Report{}, chaos.Stats{}, err
	}
	if err := inj.Arm(region, cl.Volume); err != nil {
		return client.Report{}, chaos.Stats{}, err
	}
	if err := cl.Skip(historySlots + offset); err != nil {
		return client.Report{}, chaos.Stats{}, err
	}
	spec := job.Spec{ID: "chaos-job", Type: typ, Exec: 1, Recovery: timeslot.Seconds(30)}
	var rep client.Report
	switch strategy {
	case "one-time":
		rep, err = cl.RunOneTime(spec)
	case "persistent-30":
		rep, err = cl.RunPersistent(spec)
	case "percentile-90":
		rep, err = cl.RunPercentile(spec, 90, cloud.Persistent)
	default:
		return client.Report{}, chaos.Stats{}, fmt.Errorf("experiments: unknown chaos strategy %q", strategy)
	}
	return rep, inj.Stats(), err
}

// ChaosSweep reruns the §7.1 single-job experiment under injected
// faults: transient API errors, degraded price telemetry, capacity
// outages, delayed out-bid notices, and lost checkpoints, at
// increasing intensity. It reports how cost and completion time
// degrade versus the fault-free baseline for each strategy — the
// robustness question the paper could not ask of real EC2.
func ChaosSweep(o Opts) (ChaosResult, error) {
	o = o.withDefaults()
	typ := instances.R3XLarge

	// Flatten the rate×strategy grid so every (cell, run) pair shares
	// one worker pool instead of a barrier per cell.
	type chaosCell struct {
		rate     float64
		si       int
		strategy string
	}
	var cells []chaosCell
	for _, rate := range chaosRates {
		for si, strategy := range chaosStrategies {
			cells = append(cells, chaosCell{rate: rate, si: si, strategy: strategy})
		}
	}
	type runResult struct {
		rep    client.Report
		faults chaos.Stats
		err    error
	}
	results := make([][]runResult, len(cells))
	// Each parallel repetition records into its own registry; the
	// snapshots merge into o.Metrics in cell-major run order below,
	// keeping the aggregate independent of worker scheduling.
	var regs [][]*obs.Registry
	if o.Metrics != nil {
		regs = make([][]*obs.Registry, len(cells))
	}
	cellOffs := make([][]int, len(cells))
	for ci, cell := range cells {
		results[ci] = make([]runResult, o.Runs)
		cellOffs[ci] = offsets(o.Runs, o.Seed+int64(cell.si))
		if regs != nil {
			regs[ci] = make([]*obs.Registry, o.Runs)
			for run := range regs[ci] {
				regs[ci][run] = obs.New()
			}
		}
	}
	// Run 0 of every cell feeds the shared recorder, serialized in
	// cell order by the scheduler — see Opts.Trace's determinism note.
	var traced func(int) bool
	if o.Trace != nil {
		traced = func(int) bool { return true }
	}
	err := forEachCellRun(len(cells), o.Runs, traced, func(ci, run int) error {
		cell := cells[ci]
		seed := o.Seed + int64(cell.si)*2003 + int64(run)*7919
		var met *obs.Registry
		if regs != nil {
			met = regs[ci][run]
		}
		var rec *event.Recorder
		if run == 0 {
			rec = o.Trace
		}
		rep, st, err := chaosRun(typ, cell.strategy, cell.rate, seed, cellOffs[ci][run], o.Days, met, rec)
		// A client that cannot start its job at all is a data
		// point, not an experiment failure.
		results[ci][run] = runResult{rep: rep, faults: st, err: err}
		return nil
	})
	if err != nil {
		return ChaosResult{}, err
	}

	var res ChaosResult
	baseline := map[string]ChaosRow{} // strategy → rate-0 row
	for ci, cell := range cells {
		row := ChaosRow{Strategy: cell.strategy, Rate: cell.rate, Runs: o.Runs}
		if regs != nil {
			for _, reg := range regs[ci] {
				if err := o.Metrics.Merge(reg.Snapshot()); err != nil {
					return ChaosResult{}, fmt.Errorf("experiments: merging chaos run metrics: %w", err)
				}
			}
		}
		var cost, compl float64
		for _, r := range results[ci] {
			row.Faults += r.faults.Total()
			if r.err != nil {
				row.Errored++
				continue
			}
			if r.rep.Telemetry.FellBackOnDemand {
				row.FellBack++
			}
			if r.rep.Telemetry.Stale {
				row.StaleRuns++
			}
			if !r.rep.Outcome.Completed {
				continue
			}
			row.Completed++
			cost += r.rep.Outcome.Cost
			compl += float64(r.rep.Outcome.Completion)
			row.Interruptions += r.rep.Outcome.Interruptions
			row.CheckpointFailures += r.rep.Outcome.CheckpointFailures
		}
		if row.Completed > 0 {
			row.MeanCost = cost / float64(row.Completed)
			row.MeanCompletion = timeslot.Hours(compl / float64(row.Completed))
		}
		o.Metrics.Counter("experiments.chaos.runs").Add(int64(row.Runs))
		o.Metrics.Counter("experiments.chaos.completed").Add(int64(row.Completed))
		o.Metrics.Counter("experiments.chaos.errored").Add(int64(row.Errored))
		if cell.rate == 0 {
			if row.Completed == 0 {
				return ChaosResult{}, fmt.Errorf("experiments: fault-free %s baseline never completed", cell.strategy)
			}
			baseline[cell.strategy] = row
		} else if base, ok := baseline[cell.strategy]; ok && row.Completed > 0 {
			row.CostDegradation = row.MeanCost/base.MeanCost - 1
			row.CompletionDegradation = float64(row.MeanCompletion)/float64(base.MeanCompletion) - 1
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Row returns the (strategy, rate) row, or false.
func (r ChaosResult) Row(strategy string, rate float64) (ChaosRow, bool) {
	for _, row := range r.Rows {
		if row.Strategy == strategy && row.Rate == rate {
			return row, true
		}
	}
	return ChaosRow{}, false
}

// Render returns the degradation table as aligned text.
func (r ChaosResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Strategy, fmt.Sprintf("%.2f", row.Rate),
			fmt.Sprintf("%d/%d", row.Completed, row.Runs),
			f4(row.MeanCost), f2(float64(row.MeanCompletion)),
			pct(row.CostDegradation), pct(row.CompletionDegradation),
			fmt.Sprintf("%d", row.FellBack), fmt.Sprintf("%d", row.StaleRuns),
			fmt.Sprintf("%d", row.CheckpointFailures), fmt.Sprintf("%d", row.Faults),
		}
	}
	return Table([]string{"strategy", "rate", "completed", "cost", "compl(h)", "Δcost", "Δcompl", "od-fallback", "stale", "ckpt-lost", "faults"}, rows)
}
