package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/event"
	"repro/internal/trace"
)

// The batched-core equivalence goldens: the rendered bytes of the
// Table 3 and Figure 5/6 macros (plus Table 3's merged metrics
// snapshot), captured from the legacy per-slot path before the
// struct-of-arrays / pooled-quote refactor landed. The refactor's
// contract is that the fast path changes no observable byte — these
// tests pin it. Regenerate with
//
//	go test ./internal/experiments -run TestBatchedCore -update-golden
//
// only after an intentional behavior change, never to paper over an
// equivalence break.
var updateGolden = flag.Bool("update-golden", false, "rewrite the batched-core equivalence goldens")

// goldenOpts is the fixed-seed configuration every golden uses. Small
// run counts keep the suite fast; the seeds exercise the incremental
// monitor on every supervised slot.
func goldenOpts() Opts { return Opts{Seed: 7, Runs: 2, Days: 63} }

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".golden")
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update-golden on the legacy path): %v", path, err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("%s: output diverged from the legacy-path golden\n--- want\n%s\n--- got\n%s", name, want, got)
	}
}

// renderGoldens produces every golden's bytes under the current
// implementation with a fresh trace memo.
func renderGoldens(t *testing.T) map[string][]byte {
	t.Helper()
	trace.SetMemoCapacity(64)
	defer trace.ResetMemo()
	out := map[string][]byte{}

	met := obs.New()
	rec := event.NewRecorder(event.Config{Unbounded: true})
	o := goldenOpts()
	o.Metrics = met
	o.Trace = rec
	t3, err := Table3(o)
	if err != nil {
		t.Fatal(err)
	}
	out["table3"] = []byte(t3.Render())
	snap, err := met.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	out["table3_metrics"] = snap
	var jsonl bytes.Buffer
	if err := rec.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	out["table3_trace"] = jsonl.Bytes()

	f5, err := Figure5(goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	out["figure5"] = []byte(f5.Render())

	f6, err := Figure6(goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	out["figure6"] = []byte(f6.Render())
	return out
}

// TestBatchedCoreGoldens pins the Table 3 / Figure 5–6 macros to the
// legacy path's bytes at the default GOMAXPROCS.
func TestBatchedCoreGoldens(t *testing.T) {
	for name, got := range renderGoldens(t) {
		checkGolden(t, name, got)
	}
}

// TestBatchedCoreGoldensProcMatrix re-runs the macro goldens — the
// rendered reports, the merged metrics JSON, and the flight-recorder
// JSONL — at GOMAXPROCS 1, 2, and NumCPU: worker-pool sizing and
// shard boundaries both move with the proc count, so any leak of
// scheduling into an observable byte fails here.
func TestBatchedCoreGoldensProcMatrix(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are written by TestBatchedCoreGoldens")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, p := range []int{1, 2, runtime.NumCPU()} {
		runtime.GOMAXPROCS(p)
		for name, got := range renderGoldens(t) {
			checkGolden(t, name, got)
		}
	}
}
