package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/chaos"
	"repro/internal/invariant"
	"repro/internal/obs/tsdb"
	"repro/internal/serve"
)

// ServeDrill runs the serving-layer chaos drill end to end: the
// degradation-aware control plane over a live simulated market under
// the canonical fault schedule (feed stall, build failures, clock
// skew, request burst, delayed swap, price spike), then audits the
// stream against every serving invariant and replays the run to prove
// byte-identical determinism. It is the experiments-facing twin of the
// e2e test in internal/serve — the test asserts, this reports.

// ServeTierSpan is one maximal run of slots spent in a single ladder
// tier.
type ServeTierSpan struct {
	From, To int
	Tier     string
}

// ServeDrillResult is the rendered drill outcome.
type ServeDrillResult struct {
	// Slots is the drill length.
	Slots int
	// Spans is the ladder timeline, compressed to tier runs.
	Spans []ServeTierSpan
	// Outcomes is the request ledger, one row per outcome that
	// occurred, in outcome order.
	Outcomes []ServeOutcomeRow
	// Total is the ledger sum.
	Total uint64
	// Versions is the number of table versions published.
	Versions int
	// Checkers lists the serving invariants verified.
	Checkers []string
	// Violations are the invariant breaches (empty on a healthy run).
	Violations []invariant.Violation
	// ReplayIdentical is the run-pair determinism verdict;
	// Fingerprint is the audit export's FNV-1a hash.
	ReplayIdentical bool
	Fingerprint     uint64
	// Alerts is the SLO engine's transition log (empty unless the run
	// was given a tsdb via Opts.TSDB).
	Alerts []tsdb.Alert
}

// ServeOutcomeRow is one ledger line.
type ServeOutcomeRow struct {
	Outcome string
	Count   uint64
}

// serveDrillInjector converts the canonical drill timeline into a
// chaos schedule.
func serveDrillInjector() (*chaos.ServeInjector, error) {
	kinds := map[string]chaos.ServeFaultKind{
		"feed-stall":  chaos.ServeFeedStall,
		"build-fail":  chaos.ServeBuildFail,
		"build-delay": chaos.ServeBuildDelay,
		"clock-skew":  chaos.ServeClockSkew,
		"price-spike": chaos.ServePriceSpike,
	}
	var sched chaos.ServeSchedule
	for _, f := range serve.DefaultDrillFaults() {
		k, ok := kinds[f.Kind]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown drill fault kind %q", f.Kind)
		}
		sched = append(sched, chaos.ServeFaultAt{Slot: f.Slot, Kind: k, Slots: f.Slots})
	}
	return chaos.NewServeSchedule(sched)
}

// ServeDrillRun executes the drill and its replay and verifies the
// invariants.
func ServeDrillRun(o Opts) (ServeDrillResult, error) {
	o = o.withDefaults()
	run := func(metered bool) (*serve.DrillResult, error) {
		inj, err := serveDrillInjector()
		if err != nil {
			return nil, err
		}
		cfg := serve.DrillConfig{Seed: o.Seed, Faults: inj}
		if metered {
			cfg.Metrics = o.Metrics
			// Only the primary run scrapes: the shared tsdb would see
			// the replay as a second, slot-regressing pass.
			cfg.TSDB = o.TSDB
			cfg.Events = o.Trace
		}
		return serve.Drill(cfg)
	}
	// Only the primary run records metrics: the replay exists to prove
	// determinism, not to double every counter.
	res, err := run(true)
	if err != nil {
		return ServeDrillResult{}, err
	}
	replay, err := run(false)
	if err != nil {
		return ServeDrillResult{}, err
	}

	out := ServeDrillResult{
		Slots:           res.Slots,
		Total:           res.Total,
		Checkers:        invariant.ServeCheckers(),
		Fingerprint:     res.Fingerprint,
		ReplayIdentical: res.Fingerprint == replay.Fingerprint,
		Alerts:          res.Alerts,
	}
	for _, m := range res.Published {
		out.Versions += len(m)
	}
	for slot, tier := range res.TierBySlot {
		name := tier.String()
		if n := len(out.Spans); n > 0 && out.Spans[n-1].Tier == name {
			out.Spans[n-1].To = slot
			continue
		}
		out.Spans = append(out.Spans, ServeTierSpan{From: slot, To: slot, Tier: name})
	}
	for o := serve.Outcome(0); o < serve.NumOutcomes; o++ {
		if n := res.Counts[o]; n > 0 {
			out.Outcomes = append(out.Outcomes, ServeOutcomeRow{Outcome: o.String(), Count: n})
		}
	}

	st := &invariant.ServeRunState{
		FreshForSlots: res.FreshForSlots,
		StaleForSlots: res.StaleForSlots,
		Total:         res.Total,
		Counts:        res.Counts,
		Published:     res.Published,
	}
	out.Violations = invariant.VerifyServe(res.Records, st)
	out.Violations = append(out.Violations, invariant.CompareServeReplay(res.AuditJSONL, replay.AuditJSONL)...)
	sort.SliceStable(out.Violations, func(i, j int) bool {
		return out.Violations[i].Checker < out.Violations[j].Checker
	})
	return out, nil
}

// Render returns the drill report: the ladder timeline, the request
// ledger, and the invariant verdict.
func (r ServeDrillResult) Render() string {
	var b strings.Builder

	rows := make([][]string, len(r.Spans))
	for i, s := range r.Spans {
		rows[i] = []string{fmt.Sprintf("%d–%d", s.From, s.To), fmt.Sprintf("%d", s.To-s.From+1), s.Tier}
	}
	b.WriteString("ladder timeline:\n")
	b.WriteString(Table([]string{"slots", "len", "tier"}, rows))

	rows = make([][]string, len(r.Outcomes))
	for i, o := range r.Outcomes {
		rows[i] = []string{o.Outcome, fmt.Sprintf("%d", o.Count)}
	}
	b.WriteString(fmt.Sprintf("\nrequest ledger (%d requests, %d table versions published):\n", r.Total, r.Versions))
	b.WriteString(Table([]string{"outcome", "count"}, rows))

	verdict := "all held"
	if len(r.Violations) > 0 {
		verdict = fmt.Sprintf("%d VIOLATIONS", len(r.Violations))
	}
	b.WriteString(fmt.Sprintf("\ninvariants (%s): %s\n", strings.Join(r.Checkers, ", "), verdict))
	for _, v := range r.Violations {
		b.WriteString(fmt.Sprintf("  %s slot %d: %s\n", v.Checker, v.Slot, v.Detail))
	}
	if len(r.Alerts) > 0 {
		b.WriteString("\nSLO alerts:\n")
		for _, a := range r.Alerts {
			b.WriteString("  " + a.String() + "\n")
		}
	}
	replay := "byte-identical"
	if !r.ReplayIdentical {
		replay = "DIVERGED"
	}
	b.WriteString(fmt.Sprintf("replay: %s (audit fingerprint %016x)\n", replay, r.Fingerprint))
	return b.String()
}
