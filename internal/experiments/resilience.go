package experiments

import (
	"repro/internal/invariant"
)

// ResilienceOpts configures a fault-schedule campaign: the scenario
// to perturb, the schedule lattice, and the audit depth. Zero values
// get the smoke-campaign defaults.
type ResilienceOpts struct {
	// Scenario is the fleet run every schedule perturbs.
	Scenario invariant.Scenario
	// Grid is the explicit schedule lattice (zero: DefaultGrid).
	Grid invariant.Grid
	// Random adds seeded random schedules on top of the grid
	// (default 30; negative disables).
	Random int
	// RandomMaxFaults bounds faults per random schedule (default 3).
	RandomMaxFaults int
	// RandomWindow is the random start-slot window after submission
	// (default 72 slots).
	RandomWindow int
	// Replay re-runs every schedule and compares fingerprints — the
	// replay-determinism invariant (default off; the smoke campaign
	// turns it on).
	Replay bool
	// ShrinkBudget caps oracle evaluations per violating-schedule
	// shrink (default 200).
	ShrinkBudget int
}

func (o ResilienceOpts) withDefaults() ResilienceOpts {
	if len(o.Grid.Kinds) == 0 {
		grid := invariant.DefaultGrid()
		grid.Seed = o.Grid.Seed
		o.Grid = grid
	}
	if o.Grid.Seed == 0 {
		o.Grid.Seed = 1
	}
	if o.Random == 0 {
		o.Random = 30
	}
	if o.RandomMaxFaults <= 0 {
		o.RandomMaxFaults = 3
	}
	if o.RandomWindow <= 0 {
		o.RandomWindow = 72
	}
	if o.ShrinkBudget <= 0 {
		o.ShrinkBudget = 200
	}
	return o
}

// ResilienceCampaign audits every schedule of the lattice — grid
// singles and pairs plus seeded random schedules — against the full
// invariant suite, in parallel over the worker pool, then shrinks any
// violating schedule to a minimal reproducer. Deterministic for a
// fixed scenario and grid seed: the schedule list, every run, and the
// report are identical across invocations.
func ResilienceCampaign(o ResilienceOpts) (invariant.CampaignReport, error) {
	o = o.withDefaults()
	base := o.Scenario.SubmitSlot()
	scheds := o.Grid.Schedules(base)
	if o.Random > 0 {
		scheds = append(scheds, o.Grid.Random(o.Random, o.RandomMaxFaults, base, o.RandomWindow)...)
	}
	results := make([]invariant.ScheduleResult, len(scheds))
	err := forEachCellRun(len(scheds), 1, nil, func(ci, _ int) error {
		results[ci] = invariant.RunSchedule(o.Scenario, ci, scheds[ci], o.Replay)
		return nil
	})
	if err != nil {
		return invariant.CampaignReport{}, err
	}
	// Shrinking re-runs the scenario up to ShrinkBudget times per
	// violating schedule; runs sequentially — violations are the
	// exceptional case.
	for i := range results {
		if results[i].Err == "" && len(results[i].Violations) > 0 {
			invariant.ShrinkViolating(o.Scenario, &results[i], scheds[i], o.Replay, o.ShrinkBudget)
		}
	}
	seed := o.Scenario.Seed
	if seed == 0 {
		seed = 1
	}
	return invariant.Summarize(seed, o.Replay, results), nil
}
