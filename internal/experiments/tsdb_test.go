package experiments

import (
	"bytes"
	"testing"

	"repro/internal/obs/tsdb"
)

// failoverDump runs a small FailoverSweep with a tsdb attached and
// returns the dump.
func failoverDump(t *testing.T) []byte {
	t.Helper()
	db := tsdb.New(tsdb.Config{})
	if _, err := FailoverSweep(Opts{Seed: 3, Runs: 2, Days: 63, TSDB: db}); err != nil {
		t.Fatal(err)
	}
	return db.DumpJSONL()
}

// TestFailoverSweepTSDBDeterminism: the sweep shares one DB across all
// cells (run-0s serialized in cell order); two identical sweeps must
// dump identical bytes.
func TestFailoverSweepTSDBDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run fleet sweep")
	}
	a := failoverDump(t)
	if len(a) == 0 {
		t.Fatal("empty dump")
	}
	b := failoverDump(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical sweeps dumped different tsdb bytes")
	}

	// The dump carries the sweep's own signal set: breaker and health
	// step series per member plus the per-cell outcome series.
	series, err := tsdb.ReadJSONL(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range series {
		names[s.Name] = true
	}
	for _, want := range []string{"fleet.breaker", "fleet.health", "failover.fleet_cost", "failover.od_cost", "failover.savings"} {
		if !names[want] {
			t.Fatalf("dump missing %q series; have %v", want, names)
		}
	}
}

// TestServeDrillRunTSDB: the experiments-facing drill threads the tsdb
// through and surfaces the SLO walk.
func TestServeDrillRunTSDB(t *testing.T) {
	db := tsdb.New(tsdb.Config{})
	res, err := ServeDrillRun(Opts{Seed: 1, TSDB: db})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if len(res.Alerts) == 0 {
		t.Fatal("drill produced no SLO alerts")
	}
	if db.NumSeries() == 0 {
		t.Fatal("drill scraped nothing")
	}
	// The render mentions the alerts.
	if out := res.Render(); !bytes.Contains([]byte(out), []byte("SLO alerts:")) {
		t.Fatalf("render missing SLO alerts section:\n%s", out)
	}
}
