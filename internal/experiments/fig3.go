package experiments

import (
	"fmt"
	"math"

	"repro/internal/instances"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig3Row is one panel of Figure 3: a two-month price history for one
// instance type, histogrammed and fitted.
type Fig3Row struct {
	Type instances.Type
	// MeanPrice and FloorPrice summarize the trace.
	MeanPrice, FloorPrice float64
	// ParetoBeta/ParetoAlpha/ParetoMSE: least-squares fit of the
	// exact Pareto-arrival equilibrium density (θ fixed at 0.02).
	ParetoBeta, ParetoAlpha, ParetoMSE float64
	// ExpBeta/ExpEta/ExpMSE: fit of the exponential-arrival density.
	ExpBeta, ExpEta, ExpMSE float64
	// PaperMSE: fit of the paper's literal (un-Jacobianed) Eq. 7
	// Pareto form with a free scale.
	PaperMSE float64
	// MixMSE: fit of the generative plateau+tail mixture itself —
	// the floor for what any fit of this family can achieve.
	MixMSE float64
	// DayNightP is the §4.3 two-sample KS p-value between daytime
	// and nighttime prices (thinned to decorrelate); the paper
	// reports p > 0.01, i.e. stationarity over the day.
	DayNightP float64
}

// Fig3Result is the Figure 3 reproduction.
type Fig3Result struct {
	Rows []Fig3Row
	// Bins is the histogram resolution used for the fits.
	Bins int
}

// fig3Bins is the histogram resolution; the fits operate on per-bin
// probability mass, so MSEs are dimensionless and comparable across
// instance types (see EXPERIMENTS.md for the normalization note).
const fig3Bins = 60

// Figure3 regenerates Fig. 3: synthetic two-month histories for the
// four types, histogram PDFs, Pareto and exponential fits of the
// §4 provider model, and the day/night stationarity check.
func Figure3(o Opts) (Fig3Result, error) {
	o = o.withDefaults()
	res := Fig3Result{Bins: fig3Bins}
	for i, typ := range instances.Figure3Types() {
		cal, err := trace.CalibrationFor(typ)
		if err != nil {
			return Fig3Result{}, err
		}
		// DwellSlots 1: §4.3 validates the i.i.d. equilibrium model, and
		// the marginal fit is cleanest on independent draws.
		tr, err := trace.Generate(typ, trace.GenOptions{Days: 61, Seed: o.Seed + int64(i)*7777, DwellSlots: 1})
		if err != nil {
			return Fig3Result{}, err
		}
		row, err := fitFig3Row(cal, tr)
		if err != nil {
			return Fig3Result{}, fmt.Errorf("experiments: fig3 %s: %w", typ, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func fitFig3Row(cal trace.Calibration, tr *trace.Trace) (Fig3Row, error) {
	pod := cal.Provider.POnDemand
	theta := cal.Provider.Theta
	floor := tr.Min()
	hist, err := stats.NewHistogram(tr.Prices, floor, tr.Max(), fig3Bins)
	if err != nil {
		return Fig3Row{}, err
	}
	// The fits operate on per-bin probability mass evaluated as CDF
	// differences across bin edges — the plateau density is nearly
	// singular at the floor, so midpoint-times-width quadrature would
	// misstate the first bin badly. Bin i is indexed by its center
	// for FitPDF's (x, value) pairing; each model converts the center
	// back to its edges.
	xs := hist.Centers()
	width := hist.BinWidth()
	mass := make([]float64, len(hist.Densities))
	for i, d := range hist.Densities {
		mass[i] = d * width
	}
	edges := func(center float64) (float64, float64) {
		return center - width/2, center + width/2
	}

	// h⁻¹ under candidate β (θ fixed): arrival volume at price x.
	lam := func(beta, x float64) float64 {
		den := pod - 2*x
		if den <= 0 {
			return math.Inf(1)
		}
		return theta * (beta/den - 1)
	}

	// binMass builds a per-bin-mass model from an arrival CDF: the
	// price CDF is F_Λ(h⁻¹(x)) (h is increasing), so bin mass is an
	// exact CDF difference.
	binMass := func(beta float64, cdf func(lambda float64) float64) func(float64) float64 {
		priceCDF := func(x float64) float64 {
			l := lam(beta, x)
			if math.IsInf(l, 1) {
				return 1
			}
			return cdf(l)
		}
		return func(center float64) float64 {
			lo, hi := edges(center)
			// The first bin's lower edge sits at the observed floor;
			// include the entire lower tail (the clamped atom).
			if lo <= floor {
				return priceCDF(hi)
			}
			return priceCDF(hi) - priceCDF(lo)
		}
	}

	// Exact Pareto-arrival equilibrium mass.
	paretoModel := func(p []float64) func(float64) float64 {
		beta, alpha := p[0], p[1]
		lamMin := lam(beta, floor)
		return binMass(beta, func(l float64) float64 {
			if l <= lamMin {
				return 0
			}
			return 1 - math.Pow(lamMin/l, alpha)
		})
	}
	paretoFit, err := stats.FitPDF(xs, mass, paretoModel,
		[]float64{cal.Provider.Beta, cal.TailAlpha},
		func(p []float64) bool { return p[0] > pod-2*floor && p[1] > 1.01 && p[1] < 500 })
	if err != nil {
		return Fig3Row{}, fmt.Errorf("pareto fit: %w", err)
	}

	// Exponential-arrival equilibrium mass (support from h(0); the
	// clamped atom at the floor lands in the first bin).
	expModel := func(p []float64) func(float64) float64 {
		beta, eta := p[0], p[1]
		return binMass(beta, func(l float64) float64 {
			if l <= 0 {
				return 0
			}
			return 1 - math.Exp(-l/eta)
		})
	}
	expFit, err := stats.FitPDF(xs, mass, expModel,
		[]float64{cal.Provider.Beta, cal.ExpEta},
		func(p []float64) bool { return p[0] > 0 && p[1] > 1e-9 })
	if err != nil {
		return Fig3Row{}, fmt.Errorf("exponential fit: %w", err)
	}

	// The paper's literal Eq. 7 (no Jacobian), with a free scale so
	// least squares is meaningful for the unnormalized form.
	paperModel := func(p []float64) func(float64) float64 {
		beta, alpha, scale := p[0], p[1], p[2]
		lamMin := lam(beta, floor)
		return func(x float64) float64 {
			l := lam(beta, x)
			if math.IsInf(l, 1) || l < lamMin {
				return 0
			}
			// Center evaluation: the paper form is an unnormalized
			// density, so there is no CDF to difference.
			return scale * alpha * math.Pow(lamMin, alpha) / math.Pow(l, alpha+1)
		}
	}
	paperFit, err := stats.FitPDF(xs, mass, paperModel,
		[]float64{cal.Provider.Beta, cal.TailAlpha, 1e-3},
		func(p []float64) bool { return p[0] > pod-2*floor && p[1] > 1.01 && p[1] < 500 && p[2] > 0 })
	if err != nil {
		return Fig3Row{}, fmt.Errorf("paper-form fit: %w", err)
	}

	// The generative mixture itself (β, θ known): the attainable
	// floor for this family.
	mixModel := func(p []float64) func(float64) float64 {
		a1, a2, w := p[0], p[1], p[2]
		beta := cal.Provider.Beta
		lamMin := lam(beta, floor)
		return binMass(beta, func(l float64) float64 {
			if l <= lamMin {
				return 0
			}
			return 1 - w*math.Pow(lamMin/l, a1) - (1-w)*math.Pow(lamMin/l, a2)
		})
	}
	mixFit, err := stats.FitPDF(xs, mass, mixModel,
		[]float64{cal.PlateauAlpha, cal.TailAlpha, cal.PlateauWeight},
		func(p []float64) bool {
			return p[0] > 1.01 && p[0] < 1000 && p[1] > 1.01 && p[1] < 1000 && p[2] > 0 && p[2] < 1
		})
	if err != nil {
		return Fig3Row{}, fmt.Errorf("mixture fit: %w", err)
	}

	// Day/night stationarity (§4.3).
	day, night := tr.DayNight()
	ks, err := stats.KSTwoSample(day, night)
	if err != nil {
		return Fig3Row{}, err
	}

	return Fig3Row{
		Type:        tr.Type,
		MeanPrice:   tr.Mean(),
		FloorPrice:  floor,
		ParetoBeta:  paretoFit.Params[0],
		ParetoAlpha: paretoFit.Params[1],
		ParetoMSE:   paretoFit.MSE,
		ExpBeta:     expFit.Params[0],
		ExpEta:      expFit.Params[1],
		ExpMSE:      expFit.MSE,
		PaperMSE:    paperFit.MSE,
		MixMSE:      mixFit.MSE,
		DayNightP:   ks.P,
	}, nil
}

// Render returns the result as an aligned text table.
func (r Fig3Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			string(row.Type), f4(row.FloorPrice), f4(row.MeanPrice),
			f2(row.ParetoBeta), f2(row.ParetoAlpha), fmt.Sprintf("%.2e", row.ParetoMSE),
			f2(row.ExpBeta), fmt.Sprintf("%.1e", row.ExpEta), fmt.Sprintf("%.2e", row.ExpMSE),
			fmt.Sprintf("%.2e", row.PaperMSE),
			fmt.Sprintf("%.2e", row.MixMSE),
			fmt.Sprintf("%.3f", row.DayNightP),
		}
	}
	return Table([]string{"type", "floor", "mean",
		"pareto-β", "pareto-α", "pareto-MSE",
		"exp-β", "exp-η", "exp-MSE", "paper-MSE", "mix-MSE", "KS-p"}, rows)
}
