package experiments

import (
	"fmt"

	"repro/internal/forecast"
	"repro/internal/instances"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ForecastRow is one (predictor, horizon) cell of the §5 forecasting
// check.
type ForecastRow struct {
	Predictor string
	// HorizonSlots is the look-ahead in 5-minute slots.
	HorizonSlots int
	// MAE and RMSE are rolling-origin errors.
	MAE, RMSE float64
	// RMSEOverSigma normalizes by the series' unconditional standard
	// deviation: ≈1 means the forecast carries no signal — the §5
	// justification for bidding from the distribution instead.
	RMSEOverSigma float64
}

// ForecastResult is the §5 forecasting evaluation.
type ForecastResult struct {
	Rows []ForecastRow
	// Sigma is the trace's unconditional standard deviation.
	Sigma float64
}

// ForecastEval quantifies §5's dismissal of time-series forecasting:
// rolling forecasts on a two-month r3.xlarge history at horizons of
// one slot, one hour, and half a day. Errors at long horizons reach
// the unconditional σ — predictions "far in advance" really are
// uninformative, so the strategies' distribution-based derivation is
// the right call.
func ForecastEval(o Opts) (ForecastResult, error) {
	o = o.withDefaults()
	tr, err := trace.Generate(instances.R3XLarge, trace.GenOptions{Days: 61, Seed: o.Seed})
	if err != nil {
		return ForecastResult{}, err
	}
	res := ForecastResult{Sigma: stats.StdDev(tr.Prices)}
	preds := []forecast.Predictor{
		forecast.Naive{},
		forecast.SMA{Window: 12},
		forecast.EWMA{Alpha: 0.2},
		forecast.AR1{},
	}
	for _, h := range []int{1, 12, 144} {
		for _, p := range preds {
			e, err := forecast.Evaluate(p, tr.Prices, h, 2000, 17)
			if err != nil {
				return ForecastResult{}, err
			}
			res.Rows = append(res.Rows, ForecastRow{
				Predictor:     p.Name(),
				HorizonSlots:  h,
				MAE:           e.MAE,
				RMSE:          e.RMSE,
				RMSEOverSigma: e.RMSE / res.Sigma,
			})
		}
	}
	return res, nil
}

// Render returns the evaluation as an aligned text table.
func (r ForecastResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Predictor,
			fmt.Sprintf("%d (%s)", row.HorizonSlots, horizonLabel(row.HorizonSlots)),
			fmt.Sprintf("%.5f", row.MAE),
			fmt.Sprintf("%.5f", row.RMSE),
			fmt.Sprintf("%.2f", row.RMSEOverSigma),
		}
	}
	return fmt.Sprintf("unconditional σ = %.5f\n%s", r.Sigma,
		Table([]string{"predictor", "horizon", "MAE", "RMSE", "RMSE/σ"}, rows))
}

func horizonLabel(slots int) string {
	switch {
	case slots < 12:
		return fmt.Sprintf("%dmin", slots*5)
	case slots%12 == 0:
		return fmt.Sprintf("%dh", slots/12)
	default:
		return fmt.Sprintf("%dmin", slots*5)
	}
}
