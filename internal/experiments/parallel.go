package experiments

import (
	"runtime"
	"sync"
)

// forEachRun executes fn(run) for run ∈ [0, runs) across a bounded
// worker pool and returns the first error. Each repetition of a §7
// experiment owns its private region and client, so repetitions are
// embarrassingly parallel; results must be written into
// pre-allocated, per-run slots (no shared accumulation inside fn).
func forEachRun(runs int, fn func(run int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > runs {
		workers = runs
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	errOnce := sync.Once{}
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for run := range jobs {
				if err := fn(run); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for run := 0; run < runs; run++ {
		jobs <- run
	}
	close(jobs)
	wg.Wait()
	return firstErr
}
