package experiments

import "repro/internal/sched"

// forEachRun executes fn(run) for run ∈ [0, runs) across a bounded
// worker pool and returns the first error. Each repetition of a §7
// experiment owns its private region and client, so repetitions are
// embarrassingly parallel; results must be written into
// pre-allocated, per-run slots (no shared accumulation inside fn).
//
// Dispatch stops at the first error: repetitions already running
// finish, but no new ones start, so a failed sweep returns promptly
// instead of burning the rest of the schedule.
func forEachRun(runs int, fn func(run int) error) error {
	return sched.Runs(runs, fn)
}

// forEachCellRun feeds every (cell, run) pair of a sweep — cell-major,
// runs ascending within a cell — into one bounded worker pool; see
// sched.Grid for the pooling, ordering, and traced-run chain
// contract. The generalized scheduler also drives the lanes batch
// engine's shards, so the sweeps and the batch core share one
// parallelism substrate.
func forEachCellRun(cells, runs int, traced func(cell int) bool, fn func(cell, run int) error) error {
	return sched.Grid(cells, runs, traced, fn)
}
