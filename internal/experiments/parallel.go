package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEachRun executes fn(run) for run ∈ [0, runs) across a bounded
// worker pool and returns the first error. Each repetition of a §7
// experiment owns its private region and client, so repetitions are
// embarrassingly parallel; results must be written into
// pre-allocated, per-run slots (no shared accumulation inside fn).
//
// Dispatch stops at the first error: repetitions already running
// finish, but no new ones start, so a failed sweep returns promptly
// instead of burning the rest of the schedule.
func forEachRun(runs int, fn func(run int) error) error {
	return forEachCellRun(1, runs, nil, func(_, run int) error { return fn(run) })
}

// forEachCellRun feeds every (cell, run) pair of a sweep — cell-major,
// runs ascending within a cell — into one bounded worker pool. This
// replaces the per-cell barrier the sweeps used to run (a forEachRun
// per cell), whose rendezvous left workers idle at every cell edge
// while the cell's slowest repetition finished; here the pool drains
// the whole cell×run grid continuously.
//
// Determinism contract: fn must write its outcome into a
// pre-allocated (cell, run) slot and never touch shared state, so the
// caller can aggregate and merge metrics in cell-major, run-ascending
// order after the pool drains — the same order the sequential
// per-cell loop produced.
//
// traced, when non-nil, marks cells whose run-0 repetition feeds the
// sweep's shared flight recorder (the run-0-only policy of
// Opts.Trace). Those repetitions are chained: cell c's traced run may
// only start once cell c−1's traced run has finished, which preserves
// the legacy byte stream — all of cell c's emissions precede cell
// c+1's — while every untraced repetition schedules freely around
// them. The chain cannot deadlock: pairs are dispatched in cell order,
// so the gate a traced run waits on always belongs to a pair already
// taken by some worker, and gates close unconditionally (error or
// not).
//
// The first error (by completion order, as before) is returned, and
// dispatch stops as soon as one is recorded.
func forEachCellRun(cells, runs int, traced func(cell int) bool, fn func(cell, run int) error) error {
	total := cells * runs
	workers := runtime.GOMAXPROCS(0)
	if workers > total {
		workers = total
	}
	if workers < 1 {
		workers = 1
	}

	type item struct {
		cell, run  int
		gate, done chan struct{} // traced-run chain; nil = ungated
	}

	var stop atomic.Bool
	errOnce := sync.Once{}
	var firstErr error
	jobs := make(chan item)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range jobs {
				if it.gate != nil {
					<-it.gate
				}
				// The done channel must close even when the work is
				// skipped or fails, or the next traced run would wait
				// forever.
				if !stop.Load() {
					if err := fn(it.cell, it.run); err != nil {
						errOnce.Do(func() { firstErr = err })
						stop.Store(true)
					}
				}
				if it.done != nil {
					close(it.done)
				}
			}
		}()
	}

	var prevTraced chan struct{}
feed:
	for cell := 0; cell < cells; cell++ {
		for run := 0; run < runs; run++ {
			if stop.Load() {
				break feed
			}
			it := item{cell: cell, run: run}
			if run == 0 && traced != nil && traced(cell) {
				it.gate = prevTraced
				it.done = make(chan struct{})
				prevTraced = it.done
			}
			jobs <- it
		}
	}
	close(jobs)
	wg.Wait()
	return firstErr
}
