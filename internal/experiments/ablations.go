package experiments

import (
	"errors"
	"fmt"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/instances"
	"repro/internal/job"
	"repro/internal/market"
	"repro/internal/timeslot"
	"repro/internal/trace"
)

// The ablations exercise the design choices §8 discusses and the
// model boundaries DESIGN.md documents: the provider's utilization
// weight β, the job's interruptibility t_r (Eq. 14's feasibility
// boundary), the price-stickiness assumption behind the §7.1
// reliability result, the worker count M (Eq. 17–18's crossover
// conditions), and the collective-bidding feedback of §8.

// BetaRow is one step of the utilization-weight sweep.
type BetaRow struct {
	// BetaFactor scales the calibrated β.
	BetaFactor float64
	Beta       float64
	// Price is the optimal spot price at the equilibrium load.
	Price float64
	// Accepted is the number of accepted bids at that price.
	Accepted float64
	// EqMean is the equilibrium price distribution's mean.
	EqMean float64
}

// BetaSweepResult is the provider-objective ablation.
type BetaSweepResult struct{ Rows []BetaRow }

// AblationBeta sweeps the provider's utilization weight: §4.1 claims
// more weight on utilization (higher β) lowers the spot price and
// accepts more bids.
func AblationBeta(o Opts) (BetaSweepResult, error) {
	o = o.withDefaults()
	cal, err := trace.CalibrationFor(instances.R3XLarge)
	if err != nil {
		return BetaSweepResult{}, err
	}
	// Hold the demand fixed — the same arrival mixture and the same
	// load — and vary only the provider's objective weight; that is
	// the §4.1 ceteris-paribus claim. (Re-deriving Λ_min per β would
	// pin the price floor back to π̲ by construction and invert the
	// effect.)
	arr, err := cal.ArrivalDist()
	if err != nil {
		return BetaSweepResult{}, err
	}
	baseLoad := cal.Provider.EquilibriumLoad(arr.Mean())
	var res BetaSweepResult
	for _, factor := range []float64{0.5, 0.75, 1, 1.5, 2, 4} {
		p := cal.Provider
		p.Beta = cal.Provider.Beta * factor
		if err := p.Validate(); err != nil {
			return BetaSweepResult{}, err
		}
		price := p.OptimalPrice(baseLoad)
		row := BetaRow{
			BetaFactor: factor,
			Beta:       p.Beta,
			Price:      price,
			Accepted:   p.Accepted(baseLoad, price),
		}
		if eq, err := market.NewEquilibriumPriceDist(p, arr); err == nil {
			row.EqMean = eq.Mean()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render returns the sweep as an aligned text table.
func (r BetaSweepResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			fmt.Sprintf("×%.2f", row.BetaFactor), f4(row.Beta),
			f4(row.Price), f2(row.Accepted), f4(row.EqMean),
		}
	}
	return Table([]string{"β scale", "β", "π* @ eq load", "accepted", "eq mean π"}, rows)
}

// RecoveryRow is one step of the interruptibility sweep.
type RecoveryRow struct {
	// Recovery is t_r.
	Recovery timeslot.Hours
	// Feasible reports whether any bid satisfies Eq. 14.
	Feasible bool
	// Bid, Cost, Completion describe the optimal persistent bid when
	// feasible.
	Bid, Cost  float64
	Completion timeslot.Hours
	// MinAcceptProb is the Eq. 14 floor 1 − t_k/t_r on F(p) (zero
	// when t_r ≤ t_k).
	MinAcceptProb float64
}

// RecoverySweepResult is the t_r ablation.
type RecoverySweepResult struct{ Rows []RecoveryRow }

// AblationRecovery sweeps the recovery time across the Eq. 14
// boundary: bids rise with t_r, and beyond t_k the feasibility
// constraint forces high-acceptance bids.
func AblationRecovery(o Opts) (RecoverySweepResult, error) {
	o = o.withDefaults()
	cal, err := trace.CalibrationFor(instances.R3XLarge)
	if err != nil {
		return RecoverySweepResult{}, err
	}
	pd, err := cal.PriceDist()
	if err != nil {
		return RecoverySweepResult{}, err
	}
	m := core.Market{Price: pd, OnDemand: cal.Provider.POnDemand, MinPrice: cal.Provider.PMin}
	var res RecoverySweepResult
	for _, sec := range []float64{5, 10, 30, 60, 150, 300, 600, 1200} {
		tr := timeslot.Seconds(sec)
		row := RecoveryRow{Recovery: tr}
		if q := 1 - float64(timeslot.DefaultSlot)/float64(tr); q > 0 {
			row.MinAcceptProb = q
		}
		bid, err := m.PersistentBid(core.Job{Exec: 2, Recovery: tr})
		if err == nil {
			row.Feasible = true
			row.Bid = bid.Price
			row.Cost = bid.ExpectedCost
			row.Completion = bid.ExpectedCompletion
		} else if !errors.Is(err, core.ErrInfeasible) {
			return RecoverySweepResult{}, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render returns the sweep as an aligned text table.
func (r RecoverySweepResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		feas := "yes"
		bid, cost, compl := f4(row.Bid), f4(row.Cost), f2(float64(row.Completion))
		if !row.Feasible {
			feas, bid, cost, compl = "NO", "-", "-", "-"
		}
		rows[i] = []string{
			row.Recovery.String(), feas, fmt.Sprintf("%.3f", row.MinAcceptProb),
			bid, cost, compl,
		}
	}
	return Table([]string{"t_r", "feasible", "min F(p)", "bid", "cost", "completion(h)"}, rows)
}

// DwellRow is one step of the price-stickiness sweep.
type DwellRow struct {
	// DwellSlots is the mean price persistence.
	DwellSlots int
	// OneTimeFailures counts one-time runs interrupted before
	// finishing, out of Runs.
	OneTimeFailures int
	// MeanInterruptions is the persistent run's average interruption
	// count.
	MeanInterruptions float64
	Runs              int
}

// DwellSweepResult is the stickiness ablation.
type DwellSweepResult struct{ Rows []DwellRow }

// AblationDwell sweeps the generator's price dwell: it quantifies the
// DESIGN.md observation that the paper's zero-interruption §7.1
// result depends on price stickiness — under i.i.d. slot prices
// (dwell 1) the Prop. 4 bid fails a 1-hour job roughly two times in
// three.
func AblationDwell(o Opts) (DwellSweepResult, error) {
	o = o.withDefaults()
	var res DwellSweepResult
	for _, dwell := range []int{1, 3, 9, 18, 36} {
		row := DwellRow{DwellSlots: dwell, Runs: o.Runs}
		var interSum float64
		for run := 0; run < o.Runs; run++ {
			seed := o.Seed + int64(run)*7919 + int64(dwell)*17
			tr, err := trace.Generate(instances.R3XLarge,
				trace.GenOptions{Days: o.Days, Seed: seed, DwellSlots: dwell})
			if err != nil {
				return DwellSweepResult{}, err
			}
			// One-time arm.
			rep, err := runOnTrace(tr, "one-time")
			if err != nil {
				return DwellSweepResult{}, err
			}
			if !rep.Outcome.Completed {
				row.OneTimeFailures++
			}
			// Persistent arm on the identical trace.
			rep, err = runOnTrace(tr, "persistent-30")
			if err != nil {
				return DwellSweepResult{}, err
			}
			interSum += float64(rep.Outcome.Interruptions)
		}
		row.MeanInterruptions = interSum / float64(o.Runs)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runOnTrace runs a single 1-hour job on a fresh region built from a
// pre-generated trace.
func runOnTrace(tr *trace.Trace, strategy string) (client.Report, error) {
	region, err := cloudRegion(tr)
	if err != nil {
		return client.Report{}, err
	}
	cl, err := client.New(region)
	if err != nil {
		return client.Report{}, err
	}
	if err := cl.Skip(historySlots); err != nil {
		return client.Report{}, err
	}
	spec := job.Spec{ID: "ablate", Type: tr.Type, Exec: 1}
	switch strategy {
	case "one-time":
		return cl.RunOneTime(spec)
	case "persistent-30":
		spec.Recovery = timeslot.Seconds(30)
		return cl.RunPersistent(spec)
	default:
		return client.Report{}, fmt.Errorf("experiments: unknown strategy %q", strategy)
	}
}

// Render returns the sweep as an aligned text table.
func (r DwellSweepResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			fmt.Sprintf("%d (%d min)", row.DwellSlots, row.DwellSlots*5),
			fmt.Sprintf("%d/%d", row.OneTimeFailures, row.Runs),
			f2(row.MeanInterruptions),
		}
	}
	return Table([]string{"dwell", "one-time failures", "persistent interruptions"}, rows)
}

// WorkersRow is one step of the worker-count sweep.
type WorkersRow struct {
	Workers int
	// Completion is the Eq. 18 parallel completion time.
	Completion timeslot.Hours
	// Cost is the Eq. 19 total expected cost.
	Cost float64
	// SpeedupOK marks §6.1's condition t_o < (M−1)·t_k/(1−F(p)).
	SpeedupOK bool
	// CheaperOK marks §6.1's condition t_o < (M−1)·t_r.
	CheaperOK bool
}

// WorkersSweepResult is the M ablation.
type WorkersSweepResult struct{ Rows []WorkersRow }

// AblationWorkers sweeps the slave count: completion shrinks ≈1/M
// while the §6.1 crossover conditions flip from false to true at
// small M.
func AblationWorkers(o Opts) (WorkersSweepResult, error) {
	o = o.withDefaults()
	cal, err := trace.CalibrationFor(instances.C34XL)
	if err != nil {
		return WorkersSweepResult{}, err
	}
	pd, err := cal.PriceDist()
	if err != nil {
		return WorkersSweepResult{}, err
	}
	m := core.Market{Price: pd, OnDemand: cal.Provider.POnDemand, MinPrice: cal.Provider.PMin}
	mrJob := core.MapReduceJob{Exec: 2, Recovery: timeslot.Seconds(30), Overhead: timeslot.Seconds(60)}
	var res WorkersSweepResult
	for _, workers := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		bid, err := m.SlaveBid(mrJob, workers)
		if err != nil {
			return WorkersSweepResult{}, err
		}
		speedup, err := m.ParallelSpeedup(bid.Price, mrJob, workers)
		if err != nil {
			return WorkersSweepResult{}, err
		}
		res.Rows = append(res.Rows, WorkersRow{
			Workers:    workers,
			Completion: bid.ExpectedCompletion,
			Cost:       bid.ExpectedCost,
			SpeedupOK:  speedup,
			CheaperOK:  float64(mrJob.Overhead) < float64(workers-1)*float64(mrJob.Recovery),
		})
	}
	return res, nil
}

// Render returns the sweep as an aligned text table.
func (r WorkersSweepResult) Render() string {
	rows := make([][]string, len(r.Rows))
	yn := map[bool]string{true: "yes", false: "no"}
	for i, row := range r.Rows {
		rows[i] = []string{
			fmt.Sprintf("%d", row.Workers),
			f2(float64(row.Completion)), f4(row.Cost),
			yn[row.SpeedupOK], yn[row.CheaperOK],
		}
	}
	return Table([]string{"M", "completion(h)", "cost", "speedup(§6.1)", "cheaper(§6.1)"}, rows)
}

// CollectiveRow is one step of the §8 collective-bidding feedback.
type CollectiveRow struct {
	// OptimizerShare is the fraction of load bidding exactly p*.
	OptimizerShare float64
	// ProviderPrice is the provider's best-response spot price.
	ProviderPrice float64
	// BidStillWins reports whether the original p* still clears that
	// price.
	BidStillWins bool
}

// CollectiveResult is the §8 feedback ablation.
type CollectiveResult struct {
	// UserBid is the individually optimal persistent bid p*.
	UserBid float64
	Rows    []CollectiveRow
}

// AblationCollective examines §8's "collective user behavior": as a
// growing share of bidders all submit the individually optimal p*,
// the provider's best-response price climbs toward (and onto) the
// mass point — the assumption that one user's bid does not move the
// price breaks down.
func AblationCollective(o Opts) (CollectiveResult, error) {
	o = o.withDefaults()
	cal, err := trace.CalibrationFor(instances.R3XLarge)
	if err != nil {
		return CollectiveResult{}, err
	}
	pd, err := cal.PriceDist()
	if err != nil {
		return CollectiveResult{}, err
	}
	m := core.Market{Price: pd, OnDemand: cal.Provider.POnDemand, MinPrice: cal.Provider.PMin}
	opt, err := m.PersistentBid(core.Job{Exec: 1, Recovery: timeslot.Seconds(30)})
	if err != nil {
		return CollectiveResult{}, err
	}
	res := CollectiveResult{UserBid: opt.Price}

	crowd, err := dist.NewUniform(cal.Provider.PMin, cal.Provider.POnDemand)
	if err != nil {
		return CollectiveResult{}, err
	}
	mass, err := dist.NewUniform(opt.Price-1e-6, opt.Price+1e-6)
	if err != nil {
		return CollectiveResult{}, err
	}
	// A demand level at which the uniform crowd alone prices *below*
	// p*: the §1.2 assumption (one bidder cannot move the price)
	// holds at share 0 and the sweep shows it eroding.
	load := cal.Provider.LoadForPrice(opt.Price * 0.94)
	for _, share := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.95} {
		bids := dist.Dist(crowd)
		if share > 0 {
			bids, err = dist.NewMixture([]dist.Dist{crowd, mass}, []float64{1 - share, share})
			if err != nil {
				return CollectiveResult{}, err
			}
		}
		price, err := cal.Provider.OptimalPriceForBids(load, bids)
		if err != nil {
			return CollectiveResult{}, err
		}
		res.Rows = append(res.Rows, CollectiveRow{
			OptimizerShare: share,
			ProviderPrice:  price,
			BidStillWins:   opt.Price >= price,
		})
	}
	return res, nil
}

// Render returns the feedback table.
func (r CollectiveResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		wins := "yes"
		if !row.BidStillWins {
			wins = "NO"
		}
		rows[i] = []string{
			fmt.Sprintf("%.0f%%", 100*row.OptimizerShare),
			f4(row.ProviderPrice), wins,
		}
	}
	return fmt.Sprintf("individually optimal bid p* = %s\n%s",
		f4(r.UserBid), Table([]string{"optimizer share", "provider best-response π*", "p* still wins"}, rows))
}
