package experiments

import (
	"strings"
	"testing"

	"repro/internal/instances"
)

// fastOpts keeps the per-test run counts small; the full ten-run
// sweeps run via cmd/experiments and the benchmarks.
var fastOpts = Opts{Seed: 1, Runs: 3, Days: 63}

func TestTableRenderer(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{{"xx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "--") {
		t.Error("missing separator")
	}
	// All rows align to the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("header/separator width mismatch: %q vs %q", lines[0], lines[1])
	}
}

func TestOffsetsDeterministicAndBounded(t *testing.T) {
	a := offsets(20, 5)
	b := offsets(20, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("offsets not deterministic")
		}
		if a[i] < 0 || a[i] >= 288 {
			t.Fatalf("offset %d out of a day", a[i])
		}
	}
}

func TestFigure3(t *testing.T) {
	res, err := Figure3(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Fits describe the data: the mixture (generative family)
		// fits essentially perfectly; the single-Pareto and
		// exponential forms capture the shape (mass-scale MSE small).
		if row.MixMSE > 1e-4 {
			t.Errorf("%s: mixture MSE %v", row.Type, row.MixMSE)
		}
		if row.ParetoMSE > 2e-2 {
			t.Errorf("%s: pareto MSE %v", row.Type, row.ParetoMSE)
		}
		if row.ExpMSE > 2e-2 {
			t.Errorf("%s: exponential MSE %v", row.Type, row.ExpMSE)
		}
		// §4.3: day and night prices share a distribution.
		if row.DayNightP <= 0.01 {
			t.Errorf("%s: day/night KS p = %v", row.Type, row.DayNightP)
		}
		// The price floor sits near the calibrated π̲ (≈8.6% of OD).
		spec := instances.MustLookup(row.Type)
		if row.FloorPrice < 0.05*spec.OnDemand || row.FloorPrice > 0.12*spec.OnDemand {
			t.Errorf("%s: floor %v vs on-demand %v", row.Type, row.FloorPrice, spec.OnDemand)
		}
	}
	if !strings.Contains(res.Render(), "pareto-MSE") {
		t.Error("render missing columns")
	}
}

func TestTable3(t *testing.T) {
	res, err := Table3(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The paper's bid ordering: persistent-10s ≤ persistent-30s ≤
		// one-time < on-demand.
		if !(row.Persistent10 <= row.Persistent30+1e-12) {
			t.Errorf("%s: p10 %v > p30 %v", row.Type, row.Persistent10, row.Persistent30)
		}
		if !(row.Persistent30 <= row.OneTime+1e-12) {
			t.Errorf("%s: p30 %v > one-time %v", row.Type, row.Persistent30, row.OneTime)
		}
		if !(row.OneTime < row.OnDemand) {
			t.Errorf("%s: one-time %v ≥ on-demand %v", row.Type, row.OneTime, row.OnDemand)
		}
		// Bids sit at deep-discount levels (≈9–25% of on-demand).
		if row.OneTime > 0.3*row.OnDemand {
			t.Errorf("%s: one-time bid %v too close to on-demand %v", row.Type, row.OneTime, row.OnDemand)
		}
	}
	if !strings.Contains(res.Render(), "persistent-30s") {
		t.Error("render missing columns")
	}
}

func TestFigure5(t *testing.T) {
	res, err := Figure5(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Headline: spot reduces cost by ≈90% vs on-demand.
		if row.Savings < 0.8 {
			t.Errorf("%s: savings %v", row.Type, row.Savings)
		}
		// Analytics track measurements (Fig. 5's close match).
		rel := row.MeasuredCost/row.AnalyticCost - 1
		if rel < -0.35 || rel > 0.35 {
			t.Errorf("%s: measured %v vs analytic %v", row.Type, row.MeasuredCost, row.AnalyticCost)
		}
	}
	if !strings.Contains(res.Render(), "savings") {
		t.Error("render missing columns")
	}
}

func TestFigure6(t *testing.T) {
	res, err := Figure6(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 15 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, typ := range instances.Table3Types() {
		p10, ok := res.Row(typ, "persistent-10")
		if !ok {
			t.Fatalf("missing row %s", typ)
		}
		p30, _ := res.Row(typ, "persistent-30")
		// Fig. 6(a): persistent bids pay no more per running hour
		// than one-time bids (they bid lower).
		if p10.PriceDiff > 0.02 {
			t.Errorf("%s: p10 Δprice/h = %v", typ, p10.PriceDiff)
		}
		// Fig. 6(b): persistent completion times are no shorter.
		if p10.CompletionDiff < -0.02 || p30.CompletionDiff < -0.02 {
			t.Errorf("%s: completions shrank: %v, %v", typ, p10.CompletionDiff, p30.CompletionDiff)
		}
		// The 10s strategy bids lower than the 30s strategy.
		if p10.BidPrice > p30.BidPrice+1e-9 {
			t.Errorf("%s: bid(10s) %v > bid(30s) %v", typ, p10.BidPrice, p30.BidPrice)
		}
	}
	if !strings.Contains(res.Render(), "Δcost") {
		t.Error("render missing columns")
	}
}

func TestMapReduceEval(t *testing.T) {
	t4, f7, err := MapReduceEval(Opts{Seed: 1, Runs: 2, Days: 63})
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 5 || len(f7.Rows) != 5 {
		t.Fatalf("rows = %d, %d", len(t4.Rows), len(f7.Rows))
	}
	for i, row := range t4.Rows {
		// Eq. 20's minimum M is small (paper: 3 or 4).
		if row.Workers < 2 || row.Workers > 16 {
			t.Errorf("%s: M = %d", row.Setting.Name, row.Workers)
		}
		// Master is the cheap role (paper: 10–25% of slave cost).
		if row.MasterShare > 0.8 {
			t.Errorf("%s: master/slave = %v", row.Setting.Name, row.MasterShare)
		}
		f := f7.Rows[i]
		// Fig. 7: big savings, modest slowdown.
		if f.Savings < 0.75 {
			t.Errorf("%s: savings %v", f.Setting.Name, f.Savings)
		}
		if f.Slowdown < -0.05 {
			t.Errorf("%s: spot faster than on-demand? %v", f.Setting.Name, f.Slowdown)
		}
		if f.Slowdown > 1.0 {
			t.Errorf("%s: slowdown %v not modest", f.Setting.Name, f.Slowdown)
		}
	}
	if !strings.Contains(t4.Render(), "master-bid") || !strings.Contains(f7.Render(), "slowdown") {
		t.Error("render missing columns")
	}
}

func TestFigure4(t *testing.T) {
	res, err := Figure4(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) == 0 {
		t.Fatal("empty timeline")
	}
	// Segments tile the timeline contiguously.
	prev := 0
	for _, s := range res.Segments {
		if s.FromSlot != prev {
			t.Fatalf("gap at slot %d", s.FromSlot)
		}
		if s.ToSlot <= s.FromSlot {
			t.Fatalf("empty segment %+v", s)
		}
		prev = s.ToSlot
	}
	// Running segments respect the bid; idle segments exceed it.
	for _, s := range res.Segments {
		if s.State == SegIdle && s.MaxPrice <= res.Bid {
			t.Errorf("idle segment with max price %v ≤ bid %v", s.MaxPrice, res.Bid)
		}
	}
	if res.Outcome.Completed && res.Outcome.Interruptions >= 1 {
		// The searched-for eventful window: idle segments exist.
		var idle bool
		for _, s := range res.Segments {
			idle = idle || s.State == SegIdle
		}
		if !idle {
			t.Error("interruptions reported but no idle segment")
		}
	}
	if !strings.Contains(res.Render(), "running") {
		t.Error("render missing states")
	}
}

func TestStability(t *testing.T) {
	res, err := Stability(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Prop. 1: the queue is bounded — it spends almost no time
		// above the negative-drift threshold.
		if row.FracAboveThreshold > 0.05 {
			t.Errorf("%s: %v of slots above threshold", row.Type, row.FracAboveThreshold)
		}
		// The load hovers within a small factor of the equilibrium.
		if row.MeanLoad > 3*row.EquilibriumLoad || row.MeanLoad < row.EquilibriumLoad/3 {
			t.Errorf("%s: mean load %v vs equilibrium %v", row.Type, row.MeanLoad, row.EquilibriumLoad)
		}
		// Prices agree in mean between full dynamics and equilibrium.
		rel := row.SimPriceMean/row.EqPriceMean - 1
		if rel < -0.3 || rel > 0.3 {
			t.Errorf("%s: sim price mean %v vs equilibrium %v", row.Type, row.SimPriceMean, row.EqPriceMean)
		}
		// The queue gives the dynamics memory (§8): higher lag-1
		// autocorrelation than the white equilibrium draw.
		if row.SimAutocorr1 < row.EqAutocorr1 {
			t.Errorf("%s: sim autocorr %v below equilibrium %v", row.Type, row.SimAutocorr1, row.EqAutocorr1)
		}
	}
	if !strings.Contains(res.Render(), "threshold") {
		t.Error("render missing columns")
	}
}
