package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func TestChaosSweepDegradationTable(t *testing.T) {
	opts := Opts{Seed: 1, Runs: 3, Days: 63}
	res, err := ChaosSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(chaosRates) * len(chaosStrategies); len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	for _, strategy := range chaosStrategies {
		base, ok := res.Row(strategy, 0)
		if !ok {
			t.Fatalf("missing fault-free row for %s", strategy)
		}
		if base.Completed == 0 {
			t.Errorf("%s: fault-free runs never completed", strategy)
		}
		if base.Faults != 0 {
			t.Errorf("%s: fault-free sweep injected %d faults", strategy, base.Faults)
		}
		if base.CostDegradation != 0 || base.CompletionDegradation != 0 {
			t.Errorf("%s: baseline row reports degradation vs itself", strategy)
		}
	}
	// The highest fault rate must actually inject faults.
	worst, ok := res.Row("persistent-30", 0.10)
	if !ok {
		t.Fatal("missing worst-case row")
	}
	if worst.Faults == 0 {
		t.Error("rate 0.10 injected no faults")
	}
	out := res.Render()
	for _, col := range []string{"strategy", "Δcost", "od-fallback", "faults"} {
		if !strings.Contains(out, col) {
			t.Errorf("Render missing column %q:\n%s", col, out)
		}
	}
}

// TestChaosSweepDeterministic: the whole sweep — fault sequences
// included — reproduces exactly for a fixed seed.
func TestChaosSweepDeterministic(t *testing.T) {
	opts := Opts{Seed: 5, Runs: 2, Days: 63}
	a, err := ChaosSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChaosSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sweep not deterministic:\n%s\nvs\n%s", a.Render(), b.Render())
	}
}
