package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/fleet"
	"repro/internal/obs/event"
)

// tracedFailover runs the seeded chaos failover — two regions, the
// home region armed with a forced outage — with the given recorder.
func tracedFailover(t *testing.T, rec *event.Recorder) fleet.Report {
	t.Helper()
	rep, _, err := failoverRun(2, 1.0, 11, 0, 63, nil, rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestFailoverTraceDeterminism is the PR's acceptance contract: one
// seed, one byte sequence. The same seeded chaos failover traced twice
// must export byte-identical JSONL and Chrome-trace files, and the
// recorder must not perturb the run it is observing.
func TestFailoverTraceDeterminism(t *testing.T) {
	r1 := event.NewRecorder(event.Config{Unbounded: true})
	r2 := event.NewRecorder(event.Config{Unbounded: true})
	repA := tracedFailover(t, r1)
	repB := tracedFailover(t, r2)
	repPlain := tracedFailover(t, nil)

	if !reflect.DeepEqual(repA, repB) {
		t.Fatal("two identically seeded traced runs returned different reports")
	}
	if !reflect.DeepEqual(repA, repPlain) {
		t.Fatal("tracing perturbed the run: traced report differs from untraced")
	}
	if r1.Len() == 0 || len(r1.Spans()) == 0 {
		t.Fatalf("empty trace: %d events, %d spans", r1.Len(), len(r1.Spans()))
	}

	for _, f := range []struct {
		name  string
		write func(*event.Recorder, *bytes.Buffer) error
	}{
		{"jsonl", func(r *event.Recorder, b *bytes.Buffer) error { return r.WriteJSONL(b) }},
		{"chrome", func(r *event.Recorder, b *bytes.Buffer) error { return r.WriteChromeTrace(b) }},
	} {
		var a, b bytes.Buffer
		if err := f.write(r1, &a); err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if err := f.write(r2, &b); err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if a.Len() == 0 {
			t.Fatalf("%s: empty export", f.name)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%s: exports of two identically seeded runs differ", f.name)
		}
	}
}

// TestSweepTracePolicy: a parallel sweep given a recorder confines it
// to repetition 0, so the trace is deterministic regardless of
// goroutine interleaving — and the sweep's numbers are unchanged.
func TestSweepTracePolicy(t *testing.T) {
	rec := event.NewRecorder(event.Config{Unbounded: true})
	traced, err := ChaosSweep(Opts{Seed: 5, Runs: 2, Days: 63, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ChaosSweep(Opts{Seed: 5, Runs: 2, Days: 63})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(traced, plain) {
		t.Fatal("tracing perturbed the sweep result")
	}
	if rec.Len() == 0 {
		t.Fatal("sweep emitted no events")
	}

	rec2 := event.NewRecorder(event.Config{Unbounded: true})
	if _, err := ChaosSweep(Opts{Seed: 5, Runs: 2, Days: 63, Trace: rec2}); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := rec.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := rec2.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("parallel sweep trace is not deterministic across identical runs")
	}
}
