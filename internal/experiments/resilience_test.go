package experiments

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/invariant"
)

// miniGrid keeps the campaign test fast: 2x1x2x1 singles + 2 pairs +
// 2 random = 8 schedules.
func miniGrid() invariant.Grid {
	return invariant.Grid{
		Offsets:   []int{0, 6},
		Durations: []int{3},
		Kinds:     []chaos.FaultKind{chaos.FaultAPI, chaos.FaultRegionOutage},
		Targets:   []string{""},
		Pairs:     2,
		Seed:      1,
	}
}

// TestResilienceCampaignClean: the current tree passes a miniature
// campaign — replay included — with every schedule clean, and the
// report's arithmetic adds up.
func TestResilienceCampaignClean(t *testing.T) {
	rep, err := ResilienceCampaign(ResilienceOpts{
		Grid:   miniGrid(),
		Random: 2,
		Replay: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*1*2*1 + 2 + 2; rep.Schedules != want {
		t.Fatalf("campaign ran %d schedules, want %d", rep.Schedules, want)
	}
	if rep.Violating != 0 || rep.Errors != 0 {
		t.Fatalf("campaign not clean: %+v", rep)
	}
	if rep.Clean != rep.Schedules {
		t.Errorf("clean count %d != schedules %d", rep.Clean, rep.Schedules)
	}
	if !rep.Replay || len(rep.Checkers) != 5 {
		t.Errorf("report metadata: replay=%v checkers=%v", rep.Replay, rep.Checkers)
	}
}

// TestResilienceCampaignDeterministic: two invocations produce
// byte-identical reports (modulo nothing — the struct is compared
// field by field through the summary counters and result list).
func TestResilienceCampaignDeterministic(t *testing.T) {
	opts := ResilienceOpts{Grid: miniGrid(), Random: -1}
	a, err := ResilienceCampaign(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ResilienceCampaign(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedules != b.Schedules || a.Clean != b.Clean || a.Violating != b.Violating || a.Errors != b.Errors {
		t.Fatalf("campaign counters diverged: %+v vs %+v", a, b)
	}
}

// TestResilienceCampaignShrinksMutant: with a seeded defect the
// campaign catches it on fault-delivering schedules and attaches a
// shrunk reproducer of at most 3 faults.
func TestResilienceCampaignShrinksMutant(t *testing.T) {
	mutate := func(st *invariant.RunState) {
		for _, m := range st.Members {
			if m.Injector != nil && m.Injector.Stats().Total() > 0 {
				st.Report.FleetCost += 1 // seeded conservation defect
				return
			}
		}
	}
	rep, err := ResilienceCampaign(ResilienceOpts{
		Scenario: invariant.Scenario{Mutate: mutate},
		Grid:     miniGrid(),
		Random:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violating == 0 {
		t.Fatal("seeded defect escaped the campaign")
	}
	for _, r := range rep.Results {
		if len(r.Violations) == 0 {
			continue
		}
		if r.Shrunk == "" {
			t.Errorf("violating schedule %d has no reproducer", r.Index)
		}
		if r.ShrunkFaults > 3 {
			t.Errorf("schedule %d shrank to %d faults, want <= 3", r.Index, r.ShrunkFaults)
		}
	}
}
