package experiments

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/fleet"
	"repro/internal/instances"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/obs/event"
	"repro/internal/obs/tsdb"
	"repro/internal/timeslot"
	"repro/internal/trace"
)

// failoverRegionCounts is the fleet-size axis of the sweep.
var failoverRegionCounts = []int{1, 2, 3}

// failoverRates is the region-outage axis: the per-slot probability
// that the job's home region (member 0) suffers a correlated
// region-wide outage. 1.0 is the forced outage of the acceptance
// criterion — the home region is down for the entire run.
var failoverRates = []float64{0, 0.01, 1.0}

// FailoverRow is one (regions, outage-rate) cell of the sweep.
type FailoverRow struct {
	// Regions is the fleet size.
	Regions int
	// Rate is the home region's per-slot region-outage probability.
	Rate float64
	// Completed counts runs whose job finished all its work (spot or
	// escalated); Lost counts runs where it did not; Errored counts
	// runs that failed outright.
	Completed, Lost, Errored, Runs int
	// MeanFleetCost averages the fleet's total bill (leaked slots
	// included) over completed runs; MeanCompletion the wall-clock time.
	MeanFleetCost  float64
	MeanCompletion timeslot.Hours
	// MeanOnDemand is the all-on-demand baseline cost measured on the
	// same traces and submission slots.
	MeanOnDemand float64
	// Savings is 1 − MeanFleetCost/MeanOnDemand over completed runs.
	Savings float64
	// Trips, Migrations, Escalations sum the fleet counters over runs.
	Trips, Migrations, Escalations int
}

// FailoverResult is the graceful-degradation table.
type FailoverResult struct{ Rows []FailoverRow }

// failoverSpec is the job every cell runs: the §7.1 single-job
// workload with a 30-second recovery.
func failoverSpec(typ instances.Type) job.Spec {
	return job.Spec{ID: "failover-job", Type: typ, Exec: 1, Recovery: timeslot.Seconds(30)}
}

// failoverScrape is the observability attachment of one instrumented
// failover run: a scraper over the fleet registry plus breaker-state
// and health-score step series per member, driven from the
// controller's OnSlot hook.
type failoverScrape struct {
	db     *tsdb.DB
	every  int
	labels tsdb.Labels
}

// failoverRun executes one fleet job: n regions with independent
// generated traces on a shared slot clock, the home region armed with
// a correlated region-outage chaos profile at the given rate, the
// siblings fault-free. It returns the fleet report plus the
// all-on-demand baseline cost measured on an identical home region.
// A non-nil scr attaches the tsdb scraper to the fleet's slot clock.
func failoverRun(n int, rate float64, seed int64, offset, days int, met *obs.Registry, rec *event.Recorder, scr *failoverScrape) (fleet.Report, float64, error) {
	typ := instances.R3XLarge
	spec := failoverSpec(typ)
	members := make([]fleet.Member, n)
	for i := 0; i < n; i++ {
		tr, err := trace.Generate(typ, trace.GenOptions{Days: days, Seed: seed + int64(i)*4099})
		if err != nil {
			return fleet.Report{}, 0, err
		}
		region, err := cloudRegion(tr)
		if err != nil {
			return fleet.Report{}, 0, err
		}
		cl, err := client.New(region)
		if err != nil {
			return fleet.Report{}, 0, err
		}
		cl.SetMetrics(obs.New())
		if i == 0 && rate > 0 {
			inj, err := chaos.New(chaos.Config{Seed: seed*31 + 1, RegionOutageRate: rate, RegionOutageSlots: 36})
			if err != nil {
				return fleet.Report{}, 0, err
			}
			if err := inj.Arm(region, cl.Volume); err != nil {
				return fleet.Report{}, 0, err
			}
		}
		members[i] = fleet.Member{ID: fmt.Sprintf("region-%d", i), Region: region, Client: cl}
	}
	cfg := fleet.Config{
		MigrationPenalty: timeslot.Seconds(60),
		Metrics:          met,
		Trace:            rec,
	}
	var ctl *fleet.Controller
	if scr != nil {
		scraper := tsdb.NewScraper(scr.db, tsdb.ScrapeConfig{
			Registry: met,
			Every:    scr.every,
			Labels:   scr.labels,
		})
		scraper.AddSource(func(slot int, app tsdb.Appender) {
			// ctl is assigned before the first Tick fires OnSlot.
			for i := range members {
				id := members[i].ID
				app("fleet.breaker", tsdb.L("region", id), float64(ctl.Breaker(id)))
				app("fleet.health", tsdb.L("region", id), ctl.Health(id))
			}
		})
		cfg.OnSlot = func(slot int) { scraper.Tick(slot) }
	}
	ctl, err := fleet.NewController(cfg, members...)
	if err != nil {
		return fleet.Report{}, 0, err
	}
	if err := ctl.Skip(historySlots + offset); err != nil {
		return fleet.Report{}, 0, err
	}
	rep, err := ctl.RunPersistent(spec)
	if err != nil {
		return fleet.Report{}, 0, err
	}

	// All-on-demand baseline: the same job on a pristine copy of the
	// home region's trace, submitted at the same slot.
	baseTr, err := trace.Generate(typ, trace.GenOptions{Days: days, Seed: seed})
	if err != nil {
		return fleet.Report{}, 0, err
	}
	baseRegion, err := cloudRegion(baseTr)
	if err != nil {
		return fleet.Report{}, 0, err
	}
	baseCl, err := client.New(baseRegion)
	if err != nil {
		return fleet.Report{}, 0, err
	}
	if err := baseCl.Skip(historySlots + offset); err != nil {
		return fleet.Report{}, 0, err
	}
	baseRep, err := baseCl.RunOnDemand(spec)
	if err != nil {
		return fleet.Report{}, 0, err
	}
	return rep, baseRep.Outcome.Cost, nil
}

// FailoverSweep measures graceful degradation: persistent fleet jobs
// versus fleet size and home-region outage rate. The paper's client
// was chained to one region; the sweep quantifies what §3.2's
// "default to on-demand" playbook costs there (the 1-region column)
// and what cross-market failover recovers (the multi-region columns):
// under a forced home-region outage a ≥2-region fleet completes every
// job on spot capacity, strictly cheaper than all-on-demand.
func FailoverSweep(o Opts) (FailoverResult, error) {
	o = o.withDefaults()
	// Flatten the rate×fleet-size grid into one pool of (cell, run)
	// pairs; run 0 of each cell feeds the shared flight recorder,
	// serialized in cell order by the scheduler (see Opts.Trace).
	type failoverCell struct {
		rate float64
		ni   int
		n    int
	}
	var cells []failoverCell
	for _, rate := range failoverRates {
		for ni, n := range failoverRegionCounts {
			cells = append(cells, failoverCell{rate: rate, ni: ni, n: n})
		}
	}
	type runResult struct {
		rep  fleet.Report
		base float64
		met  *obs.Registry
		err  error
	}
	results := make([][]runResult, len(cells))
	cellOffs := make([][]int, len(cells))
	for ci, cell := range cells {
		results[ci] = make([]runResult, o.Runs)
		cellOffs[ci] = offsets(o.Runs, o.Seed+int64(cell.ni))
	}
	var traced func(int) bool
	if o.Trace != nil || o.TSDB != nil {
		// The shared recorder and the shared tsdb both need run-0s
		// serialized in cell order to stay deterministic.
		traced = func(int) bool { return true }
	}
	err := forEachCellRun(len(cells), o.Runs, traced, func(ci, run int) error {
		cell := cells[ci]
		seed := o.Seed + int64(cell.ni)*2003 + int64(run)*7919
		met := obs.New()
		var rec *event.Recorder
		var scr *failoverScrape
		if run == 0 {
			rec = o.Trace
			if o.TSDB != nil {
				scr = &failoverScrape{db: o.TSDB, every: o.ScrapeEvery,
					labels: tsdb.L("rate", fmt.Sprintf("%g", cell.rate), "regions", fmt.Sprintf("%d", cell.n))}
			}
		}
		rep, base, err := failoverRun(cell.n, cell.rate, seed, cellOffs[ci][run], o.Days, met, rec, scr)
		if scr != nil && err == nil {
			// The per-cell outcome as point series at the submission
			// slot: fleet cost, on-demand baseline, and the savings
			// ratio the sweep's table reports.
			slot := historySlots + cellOffs[ci][run]
			o.TSDB.Append("failover.fleet_cost", scr.labels, slot, rep.FleetCost)
			o.TSDB.Append("failover.od_cost", scr.labels, slot, base)
			if base > 0 {
				o.TSDB.Append("failover.savings", scr.labels, slot, 1-rep.FleetCost/base)
			}
		}
		results[ci][run] = runResult{rep: rep, base: base, met: met, err: err}
		return nil
	})
	if err != nil {
		return FailoverResult{}, err
	}

	var res FailoverResult
	for ci, cell := range cells {
		row := FailoverRow{Regions: cell.n, Rate: cell.rate, Runs: o.Runs}
		var cost, base, compl float64
		for _, r := range results[ci] {
			if r.err != nil {
				row.Errored++
				continue
			}
			row.Trips += int(r.met.CounterValue("fleet.trips"))
			row.Migrations += int(r.met.CounterValue("fleet.migrations"))
			row.Escalations += int(r.met.CounterValue("fleet.escalations"))
			if o.Metrics != nil {
				if err := o.Metrics.Merge(r.met.Snapshot()); err != nil {
					return FailoverResult{}, fmt.Errorf("experiments: merging failover run metrics: %w", err)
				}
			}
			if !r.rep.Outcome.Completed {
				row.Lost++
				continue
			}
			row.Completed++
			cost += r.rep.FleetCost
			base += r.base
			compl += float64(r.rep.Outcome.Completion)
		}
		if row.Completed > 0 {
			row.MeanFleetCost = cost / float64(row.Completed)
			row.MeanOnDemand = base / float64(row.Completed)
			row.MeanCompletion = timeslot.Hours(compl / float64(row.Completed))
			if row.MeanOnDemand > 0 {
				row.Savings = 1 - row.MeanFleetCost/row.MeanOnDemand
			}
		}
		o.Metrics.Counter("experiments.failover.runs").Add(int64(row.Runs))
		o.Metrics.Counter("experiments.failover.completed").Add(int64(row.Completed))
		o.Metrics.Counter("experiments.failover.lost").Add(int64(row.Lost))
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Row returns the (regions, rate) row, or false.
func (r FailoverResult) Row(regions int, rate float64) (FailoverRow, bool) {
	for _, row := range r.Rows {
		if row.Regions == regions && row.Rate == rate {
			return row, true
		}
	}
	return FailoverRow{}, false
}

// Render returns the graceful-degradation table as aligned text.
func (r FailoverResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			fmt.Sprintf("%d", row.Regions), fmt.Sprintf("%.2f", row.Rate),
			fmt.Sprintf("%d/%d", row.Completed, row.Runs),
			fmt.Sprintf("%d", row.Lost),
			f4(row.MeanFleetCost), f4(row.MeanOnDemand), pct(row.Savings),
			f2(float64(row.MeanCompletion)),
			fmt.Sprintf("%d", row.Trips), fmt.Sprintf("%d", row.Migrations),
			fmt.Sprintf("%d", row.Escalations),
		}
	}
	return Table([]string{"regions", "rate", "completed", "lost", "fleet-cost", "od-cost", "savings", "compl(h)", "trips", "migrations", "escalations"}, rows)
}
