package strategy

// A PID feedback-control bidder in the spirit of Li, Kihl and
// Robertsson, "Performance-controlled spot instance bidding" (2017):
// instead of solving the paper's closed-form optimum, the controller
// tracks a setpoint — a configurable headroom margin above the live
// spot price — and walks its bid toward it with a clamped
// proportional–integral–derivative update each slot. The bid can
// never leave [floor, on-demand]: the proportional path is clamped,
// and the integral term saturates (anti-windup) so a long price
// spike cannot wind the controller past the ceiling.

import (
	"repro/internal/cloud"
)

// PID is the feedback-control bidder. The zero value uses the
// defaults below; the registry hands every run a fresh instance, so
// controller state never leaks across jobs.
type PID struct {
	// Kp, Ki, Kd are the controller gains (defaults 0.5, 0.1, 0.05).
	Kp, Ki, Kd float64
	// Margin is the headroom setpoint: the controller steers the bid
	// toward Spot·(1+Margin) (default 0.25).
	Margin float64
	// Target is the initial bid's acceptance quantile (default 0.85).
	Target float64
	// Patience is how many consecutive idle slots a spot leg tolerates
	// before the corrected bid is resubmitted (default 3).
	Patience int

	bid      float64
	integral float64
	prevErr  float64
}

func (p *PID) gains() (kp, ki, kd, margin float64, patience int) {
	kp, ki, kd, margin, patience = p.Kp, p.Ki, p.Kd, p.Margin, p.Patience
	if kp == 0 {
		kp = 0.5
	}
	if ki == 0 {
		ki = 0.1
	}
	if kd == 0 {
		kd = 0.05
	}
	if margin == 0 {
		margin = 0.25
	}
	if patience <= 0 {
		patience = 3
	}
	return kp, ki, kd, margin, patience
}

// Name implements Strategy.
func (p *PID) Name() string { return "pid" }

// Decide implements Strategy: the initial bid sits at the Target
// acceptance quantile, clamped into [floor, on-demand].
func (p *PID) Decide(o Observation) (Decision, error) {
	lo, hi := bounds(o.Market)
	target := p.Target
	if !(target > 0) || target >= 1 {
		target = 0.85
	}
	raw := hi
	if o.Market.Price != nil {
		raw = o.Market.Price.Quantile(target)
	}
	p.bid = clamp(raw, lo, hi)
	p.integral, p.prevErr = 0, 0
	return Decision{Price: p.bid, Kind: cloud.Persistent,
		Analytic: evalLenient(o.Market, o.Job, p.bid, cloud.Persistent)}, nil
}

// Reprice implements Adaptive: the controller state advances every
// slot, but a new bid is only submitted when the current spot leg has
// been idle (out-bid) for Patience slots — a running instance at a
// stale bid costs nothing extra, so there is nothing to correct.
func (p *PID) Reprice(o Observation) (Decision, bool) {
	kp, ki, kd, margin, patience := p.gains()
	lo, hi := bounds(o.Market)
	e := o.Spot*(1+margin) - p.bid
	if e != e { // NaN spot reading: hold the controller still
		return Decision{}, false
	}
	// Anti-windup: the integral saturates at the bid ceiling, so the
	// accumulated term alone can never push past on-demand.
	p.integral = clamp(p.integral+e, -hi, hi)
	d := e - p.prevErr
	p.prevErr = e
	p.bid = clamp(p.bid+kp*e+ki*p.integral+kd*d, lo, hi)
	if !o.OnSpot || o.IdleSlots < patience {
		return Decision{}, false
	}
	return Decision{Price: p.bid, Kind: cloud.Persistent,
		Analytic: evalLenient(o.Market, o.Job, p.bid, cloud.Persistent)}, true
}
