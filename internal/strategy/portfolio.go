package strategy

// A portfolio bidder after Zhang, Ghosh and Aggarwal's tranche-based
// cost engines (2018): instead of betting the whole job on one spot
// request, the job is split into a spot tranche priced at the Prop. 5
// optimum and an on-demand tranche that caps the tail. The spot
// weight is chosen so the expected completion time of the sequential
// split stays within a deadline factor D of the execution time:
//
//	w·ratio + (1−w) ≤ D,  ratio = E[completion]/t_s at the spot bid
//	⇒ w = min(1, (D−1)/(ratio−1))
//
// A slow market (large ratio) shrinks the spot tranche; a market
// where the optimum barely idles (ratio ≤ D) keeps the whole job on
// spot. Degenerate splits collapse: a spot tranche too small to
// amortize its recovery surcharge abandons spot entirely.

import (
	"errors"

	"repro/internal/cloud"
	"repro/internal/core"
)

// Portfolio is the spot+on-demand tranche bidder.
type Portfolio struct {
	// Deadline is the completion budget as a multiple of the job's
	// execution time (default 2: finish within twice t_s).
	Deadline float64
}

// Name implements Strategy.
func (Portfolio) Name() string { return "portfolio" }

// Decide implements Strategy.
func (pf Portfolio) Decide(o Observation) (Decision, error) {
	deadline := pf.Deadline
	if !(deadline > 1) {
		deadline = 2
	}
	bid, err := o.Market.PersistentBid(o.Job)
	if err != nil {
		if errors.Is(err, core.ErrInfeasible) {
			// Eq. 14 admits no spot tranche at all: the whole job is
			// the on-demand tranche.
			return Decision{Abstain: true}, nil
		}
		return Decision{}, err
	}
	w := 1.0
	if ratio := float64(bid.ExpectedCompletion) / float64(o.Job.Exec); ratio > deadline {
		w = (deadline - 1) / (ratio - 1)
	}
	w = clamp(w, 0, 1)
	// A spot tranche that cannot outrun its own recovery surcharge —
	// or a split so lopsided it degenerates — collapses to the pure
	// strategy on either side.
	if w < 1e-3 || float64(o.Job.Exec)*w <= float64(o.Job.Recovery) {
		return Decision{Abstain: true}, nil
	}
	if w > 1-1e-3 {
		return Decision{Price: bid.Price, Kind: cloud.Persistent, Analytic: bid}, nil
	}
	return Decision{Tranches: []Tranche{
		{Weight: w, Price: bid.Price, Kind: cloud.Persistent, Analytic: bid},
		{Weight: 1 - w, Abstain: true},
	}}, nil
}
