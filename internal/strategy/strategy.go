// Package strategy is the pluggable bidding-strategy engine: the
// Strategy interface internal/client delegates its pricing path to,
// the decision vocabulary (bid a price, split the job into tranches,
// switch instance class, or abstain to on-demand), and a registry of
// contenders — the paper's optimal bids (Prop. 4 one-time, Prop. 5
// persistent) next to the heuristics real cost engines use: the
// empirical-percentile baseline, the best-offline oracle, a PID
// feedback-control bidder (Li–Kihl–Robertsson 2017), a portfolio
// bidder splitting work across spot and on-demand tranches
// (Zhang–Ghosh–Aggarwal 2018), and an AutoSpotting-style
// opportunistic-replace heuristic.
//
// Strategies are pure deciders: they never touch the simulator
// directly. The client builds an Observation from its market view and
// the run's live state, and executes whatever Decision comes back —
// so every contender inherits the client's full resilience runtime
// (retry budgets, fallback playbook, flight recorder) for free, and
// experiments.Tournament can race all of them under the chaos grid
// and the invariant checkers.
package strategy

import (
	"errors"
	"math"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/instances"
	"repro/internal/timeslot"
)

// Observation is the market state a strategy decides from.
type Observation struct {
	// Market is the bid calculator's view of the job's instance type:
	// the F_π estimate from the price monitor plus the on-demand
	// ceiling. Repriced (Adaptive) decisions see the SAME market as
	// the initial decision — rebuilding the ECDF every slot would be
	// prohibitively expensive and would perturb chaos fault draws —
	// with only Spot tracking the live price.
	Market core.Market
	// Job is the remaining work: Exec is what is still owed (the
	// whole job at the initial decision), Recovery the
	// per-interruption recovery surcharge t_r.
	Job core.Job
	// Slot is the region's current slot index.
	Slot int
	// Spot is the current spot price of the job's instance type
	// (0 when unknown).
	Spot float64
	// Leg indexes the adaptive leg, 0 at the initial decision.
	Leg int
	// IdleSlots counts consecutive slots the current leg has sat
	// Pending/Idle (0 while running and at the initial decision).
	IdleSlots int
	// OnSpot reports whether the current leg holds a spot request
	// (false at the initial decision and on on-demand legs).
	OnSpot bool
	// BestOffline computes the §7.1 retrospective-optimum fixed bid
	// over the given lookback window. Nil outside a client run.
	BestOffline func(lookback timeslot.Hours) (float64, error)
	// MarketFor builds the market view of another instance type, for
	// strategies that switch classes. Nil outside a client run.
	MarketFor func(t instances.Type) (core.Market, error)
}

// Tranche is one slice of a split job.
type Tranche struct {
	// Weight is the fraction of the job's execution time this
	// tranche covers. Weights are positive and sum to 1.
	Weight float64
	// Abstain runs the tranche on-demand; Price/Kind/Analytic are
	// ignored.
	Abstain bool
	// Price is the tranche's bid in USD per instance-hour.
	Price float64
	// Kind selects the spot request type.
	Kind cloud.RequestKind
	// Analytic carries the model predictions at Price.
	Analytic core.Bid
}

// Decision is a strategy's answer: bid a price, split into tranches,
// switch instance class, or abstain to on-demand.
type Decision struct {
	// Abstain runs the job on-demand — no bid at all.
	Abstain bool
	// Price is the bid in USD per instance-hour.
	Price float64
	// Kind selects one-time vs persistent spot requests.
	Kind cloud.RequestKind
	// Type, when non-empty, runs the job on a different instance
	// class than the spec's. The strategy must have priced it from
	// Observation.MarketFor(Type).
	Type instances.Type
	// Analytic carries the model predictions at Price (zero when the
	// strategy has none).
	Analytic core.Bid
	// Tranches, when non-empty, splits the job across sequential
	// slices — e.g. a spot tranche hedged by an on-demand tranche.
	// The top-level Abstain/Price/Kind are ignored.
	Tranches []Tranche
}

// Strategy observes market state and returns a bid decision. Decide
// is called once per job at submission; stateful strategies get a
// fresh instance per run from the registry's factory.
type Strategy interface {
	// Name is the strategy's stable identifier (report and league-
	// table key).
	Name() string
	// Decide prices the job from the initial observation.
	Decide(o Observation) (Decision, error)
}

// Adaptive strategies keep watching the market while the job runs:
// Reprice is consulted once per slot, and returning revise=true makes
// the client release the current leg (cancel the spot request or
// terminate the on-demand instance) and resubmit the remainder under
// the new decision.
type Adaptive interface {
	Strategy
	Reprice(o Observation) (Decision, bool)
}

// Eval computes the analytic Bid fields for an arbitrary price —
// the client's historical evaluation semantics: a persistent bid
// infeasible under Eq. 14 reports the raw price with no predictions
// rather than refusing to run (only ErrInfeasible is swallowed), a
// one-time bid evaluates Prop. 4's closed form.
func Eval(m core.Market, j core.Job, price float64, kind cloud.RequestKind) (core.Bid, error) {
	if kind == cloud.Persistent {
		b, err := m.EvalPersistent(price, j)
		switch {
		case err == nil:
			return b, nil
		case errors.Is(err, core.ErrInfeasible):
			return core.Bid{Price: price}, nil
		default:
			return core.Bid{}, err
		}
	}
	return m.EvalOneTime(price, j)
}

// evalLenient is Eval for mid-run repricing, where an evaluation
// error must not abort the job: it degrades to the bare price.
func evalLenient(m core.Market, j core.Job, price float64, kind cloud.RequestKind) core.Bid {
	b, err := Eval(m, j, price, kind)
	if err != nil {
		return core.Bid{Price: price}
	}
	return b
}

// bounds returns the market's [floor, ceiling] bid interval with the
// same defaulting as core's normalization: a zero MinPrice means the
// bottom of the price support. Degenerate inputs (NaN, negative
// floor, ceiling below floor) collapse to a safe empty-ish interval
// so heuristic bidders never emit NaN or negative bids.
func bounds(m core.Market) (lo, hi float64) {
	lo = m.MinPrice
	if lo == 0 && m.Price != nil {
		lo = m.Price.Support().Lo
	}
	if math.IsNaN(lo) || lo < 0 {
		lo = 0
	}
	hi = m.OnDemand
	if math.IsNaN(hi) || hi < lo {
		hi = lo
	}
	return lo, hi
}

// clamp bounds x to [lo, hi], mapping NaN to lo.
func clamp(x, lo, hi float64) float64 {
	if hi < lo {
		hi = lo
	}
	if math.IsNaN(x) || x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
