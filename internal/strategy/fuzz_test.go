package strategy

// FuzzStrategyDecision throws arbitrary market snapshots at every
// registered strategy: whatever the inputs, a strategy must never
// panic and never emit a NaN or negative bid, and tranche splits must
// keep positive weights summing to 1. Wired into `make fuzz`.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/timeslot"
)

// sanePrice clamps fuzzed floats into a usable positive price.
func sanePrice(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.01
	}
	x = math.Abs(x)
	if x < 1e-6 {
		return 1e-6
	}
	if x > 1e6 {
		return 1e6
	}
	return x
}

func checkDecision(t *testing.T, name string, d Decision) {
	t.Helper()
	if !d.Abstain && len(d.Tranches) == 0 {
		if math.IsNaN(d.Price) || d.Price < 0 {
			t.Fatalf("%s: bid %v", name, d.Price)
		}
	}
	if len(d.Tranches) > 0 {
		sum := 0.0
		for i, tr := range d.Tranches {
			if math.IsNaN(tr.Weight) || tr.Weight <= 0 {
				t.Fatalf("%s: tranche %d weight %v", name, i, tr.Weight)
			}
			if !tr.Abstain && (math.IsNaN(tr.Price) || tr.Price < 0) {
				t.Fatalf("%s: tranche %d price %v", name, i, tr.Price)
			}
			sum += tr.Weight
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: tranche weights sum to %v", name, sum)
		}
	}
}

func FuzzStrategyDecision(f *testing.F) {
	f.Add(0.03, 0.05, 0.30, 0.35, 0.04, 1.0, 30.0)
	f.Add(0.001, 1000.0, 0.5, 2.0, 0.0, 8.0, 0.0)
	f.Add(math.NaN(), math.Inf(1), -1.0, 0.35, math.NaN(), 0.5, 10.0)
	f.Add(0.35, 0.35, 0.35, 0.35, 0.35, 4.0, 3600.0)
	f.Fuzz(func(t *testing.T, p1, p2, p3, od, spot, execH, recovS float64) {
		prices := []float64{sanePrice(p1), sanePrice(p2), sanePrice(p3)}
		e, err := dist.NewEmpirical(prices, 0)
		if err != nil {
			t.Skip()
		}
		if math.IsNaN(od) || math.IsInf(od, 0) {
			od = 0.35
		}
		m := core.Market{Price: e, OnDemand: od}
		exec := timeslot.Hours(execH)
		if !(exec > 0) || exec > 1e6 {
			exec = 1
		}
		recov := timeslot.Seconds(recovS)
		if !(recov >= 0) || recov >= exec {
			recov = 0
		}
		o := Observation{
			Market: m,
			Job:    core.Job{Exec: exec, Recovery: recov},
			Spot:   spot,
			BestOffline: func(timeslot.Hours) (float64, error) {
				return sanePrice(p2), nil
			},
		}
		for _, name := range Names() {
			s, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			d, err := s.Decide(o)
			if err != nil {
				continue // a rejected market is fine; panics and NaNs are not
			}
			checkDecision(t, name, d)
			ad, ok := s.(Adaptive)
			if !ok {
				continue
			}
			ro := o
			for step := 0; step < 8; step++ {
				// Cycle the leg through spot/on-demand and idle states
				// while the (possibly hostile) spot price repeats.
				ro.OnSpot = step%2 == 0
				ro.IdleSlots = step * 3
				ro.Leg = step
				d2, revise := ad.Reprice(ro)
				if revise {
					checkDecision(t, name, d2)
				}
			}
		}
	})
}
