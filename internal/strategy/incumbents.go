package strategy

// The incumbents: the four strategies the client hard-coded before
// the engine existed, ported verbatim so the equivalence goldens in
// internal/client pin their behavior bit-for-bit.

import (
	"errors"
	"fmt"

	"repro/internal/cloud"
	"repro/internal/timeslot"
)

// OneTime prices the job with Prop. 4 — the optimal one-time bid
// p* = max(π̲, F⁻¹(1 − t_k/t_s)) for jobs that must never be
// interrupted. An out-bid kills the job (no completion guarantee).
type OneTime struct{}

// Name implements Strategy.
func (OneTime) Name() string { return "one-time" }

// Decide implements Strategy.
func (OneTime) Decide(o Observation) (Decision, error) {
	bid, err := o.Market.OneTimeBid(o.Job)
	if err != nil {
		return Decision{}, err
	}
	return Decision{Price: bid.Price, Kind: cloud.OneTime, Analytic: bid}, nil
}

// Persistent prices the job with Prop. 5 — the optimal persistent bid
// solving ψ(p) = t_k/t_r − 1, trading interruptions for price under
// Eq. 14's completion guarantee.
type Persistent struct{}

// Name implements Strategy.
func (Persistent) Name() string { return "persistent" }

// Decide implements Strategy.
func (Persistent) Decide(o Observation) (Decision, error) {
	bid, err := o.Market.PersistentBid(o.Job)
	if err != nil {
		return Decision{}, err
	}
	return Decision{Price: bid.Price, Kind: cloud.Persistent, Analytic: bid}, nil
}

// Percentile bids the q-th percentile of the observed prices — the
// §7.1 "bid the 90th percentile" heuristic baseline.
type Percentile struct {
	// Q is the percentile in (0, 100).
	Q float64
	// Kind selects the request type (the paper's baseline uses
	// persistent requests).
	Kind cloud.RequestKind
}

// Name implements Strategy.
func (s Percentile) Name() string { return fmt.Sprintf("percentile-%g", s.Q) }

// Decide implements Strategy.
func (s Percentile) Decide(o Observation) (Decision, error) {
	price, err := o.Market.PercentileBid(s.Q)
	if err != nil {
		return Decision{}, err
	}
	analytic, err := Eval(o.Market, o.Job, price, s.Kind)
	if err != nil {
		return Decision{}, err
	}
	return Decision{Price: analytic.Price, Kind: s.Kind, Analytic: analytic}, nil
}

// FixedBid bids an explicit price — the vehicle for externally
// computed baselines.
type FixedBid struct {
	// Label names the run's strategy ("fixed-bid" when empty).
	Label string
	// Price is the bid.
	Price float64
	// Kind selects the request type.
	Kind cloud.RequestKind
}

// Name implements Strategy.
func (s FixedBid) Name() string {
	if s.Label == "" {
		return "fixed-bid"
	}
	return s.Label
}

// Decide implements Strategy.
func (s FixedBid) Decide(o Observation) (Decision, error) {
	analytic, err := Eval(o.Market, o.Job, s.Price, s.Kind)
	if err != nil {
		return Decision{}, err
	}
	return Decision{Price: analytic.Price, Kind: s.Kind, Analytic: analytic}, nil
}

// BestOffline is the §7.1 retrospective baseline: the cheapest fixed
// bid that would have kept the job running over the recent past,
// submitted as a one-time request. The paper's point stands in the
// tournament too — a short lookback underbids the future.
type BestOffline struct {
	// Lookback is the history window the oracle optimizes over
	// (default 10 hours, the paper's choice).
	Lookback timeslot.Hours
}

// Name implements Strategy.
func (BestOffline) Name() string { return "best-offline" }

// Decide implements Strategy.
func (s BestOffline) Decide(o Observation) (Decision, error) {
	if o.BestOffline == nil {
		return Decision{}, errors.New("strategy: best-offline needs the client's price-history hook")
	}
	lookback := s.Lookback
	if lookback <= 0 {
		lookback = 10
	}
	price, err := o.BestOffline(lookback)
	if err != nil {
		return Decision{}, err
	}
	analytic, err := Eval(o.Market, o.Job, price, cloud.OneTime)
	if err != nil {
		return Decision{}, err
	}
	return Decision{Price: analytic.Price, Kind: cloud.OneTime, Analytic: analytic}, nil
}

// OnDemand never bids — the flat π̄ cost baseline every league table
// is ranked against.
type OnDemand struct{}

// Name implements Strategy.
func (OnDemand) Name() string { return "on-demand" }

// Decide implements Strategy.
func (OnDemand) Decide(Observation) (Decision, error) {
	return Decision{Abstain: true}, nil
}
