package strategy

// Property tests for the heuristic bidders (seeded, deterministic):
// the PID bid can never leave [floor, on-demand] no matter what price
// trace drives it, and portfolio tranche weights are always positive
// and sum to 1.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/timeslot"
)

// randomMarket builds a valid empirical market from seeded noise:
// positive prices, a ceiling strictly above the support floor.
func randomMarket(t *testing.T, r *rand.Rand) core.Market {
	t.Helper()
	n := 50 + r.Intn(400)
	prices := make([]float64, n)
	base := 0.001 + r.Float64()*0.5
	for i := range prices {
		prices[i] = base * (0.5 + r.Float64()*2)
	}
	e, err := dist.NewEmpirical(prices, 0)
	if err != nil {
		t.Fatal(err)
	}
	// On-demand anywhere from just above the support to far above it.
	od := e.Support().Hi * (1.01 + r.Float64()*10)
	return core.Market{Price: e, OnDemand: od}
}

func randomJob(r *rand.Rand) core.Job {
	exec := timeslot.Hours(0.25 + r.Float64()*8)
	return core.Job{Exec: exec, Recovery: exec * timeslot.Hours(r.Float64()*0.9)}
}

func TestPIDBidBoundsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		m := randomMarket(t, r)
		lo, hi := bounds(m)
		o := Observation{Market: m, Job: randomJob(r)}
		p := &PID{}
		d, err := p.Decide(o)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		check := func(price float64, step int) {
			if math.IsNaN(price) || price < lo-1e-12 || price > hi+1e-12 {
				t.Fatalf("trial %d step %d: bid %v outside [%v, %v]", trial, step, price, lo, hi)
			}
		}
		check(d.Price, -1)
		// Drive the controller with an adversarial price trace: calm,
		// spikes far above on-demand, crashes to zero, and NaN reads.
		for step := 0; step < 100; step++ {
			spot := 0.0
			switch r.Intn(5) {
			case 0:
				spot = m.OnDemand * 100 * r.Float64() // absurd spike
			case 1:
				spot = 0 // crash
			case 2:
				spot = math.NaN() // corrupted read
			default:
				spot = lo + r.Float64()*(hi-lo)
			}
			o.Spot = spot
			o.OnSpot = r.Intn(2) == 0
			o.IdleSlots = r.Intn(8)
			d2, revise := p.Reprice(o)
			check(p.bid, step)
			if revise {
				check(d2.Price, step)
			}
		}
	}
}

func TestPortfolioWeightsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	deadlines := []float64{0, 1.01, 1.1, 1.5, 2, 5}
	for trial := 0; trial < 300; trial++ {
		o := Observation{Market: randomMarket(t, r), Job: randomJob(r)}
		pf := Portfolio{Deadline: deadlines[r.Intn(len(deadlines))]}
		d, err := pf.Decide(o)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(d.Tranches) == 0 {
			continue // pure spot or pure on-demand: nothing to check
		}
		sum := 0.0
		for i, tr := range d.Tranches {
			if math.IsNaN(tr.Weight) || tr.Weight <= 0 {
				t.Fatalf("trial %d tranche %d: weight %v", trial, i, tr.Weight)
			}
			if !tr.Abstain && (math.IsNaN(tr.Price) || tr.Price < 0) {
				t.Fatalf("trial %d tranche %d: price %v", trial, i, tr.Price)
			}
			sum += tr.Weight
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: weights sum to %v", trial, sum)
		}
	}
}
