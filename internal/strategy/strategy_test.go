package strategy

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/timeslot"
)

// testMarket builds a small empirical market: prices clustered near
// 0.03 with a tail, on-demand at 0.35 — the r3.xlarge shape.
func testMarket(t *testing.T) core.Market {
	t.Helper()
	prices := make([]float64, 0, 400)
	for i := 0; i < 360; i++ {
		prices = append(prices, 0.028+0.00002*float64(i))
	}
	for i := 0; i < 40; i++ {
		prices = append(prices, 0.05+0.005*float64(i))
	}
	e, err := dist.NewEmpirical(prices, 0)
	if err != nil {
		t.Fatal(err)
	}
	return core.Market{Price: e, OnDemand: 0.35}
}

func testJob() core.Job { return core.Job{Exec: 1, Recovery: timeslot.Seconds(30)} }

func obsFor(t *testing.T) Observation {
	return Observation{Market: testMarket(t), Job: testJob(), Spot: 0.03}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 7 {
		t.Fatalf("registry holds %d strategies, the tournament needs ≥ 7: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %q before %q", names[i-1], names[i])
		}
	}
	for _, name := range names {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, s.Name())
		}
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) missing", name)
		}
	}
	// Stateful strategies must come out fresh each time.
	a, _ := New("pid")
	b, _ := New("pid")
	if a.(*PID) == b.(*PID) {
		t.Error("New(pid) returned a shared instance")
	}
	if _, err := New("nope"); err == nil || !strings.Contains(err.Error(), "unknown strategy") {
		t.Errorf("New(nope) err = %v", err)
	}
	// The paper-optimal completion semantics drive the liveness audit.
	for name, want := range map[string]bool{
		"one-time": false, "best-offline": false,
		"persistent": true, "on-demand": true, "pid": true,
	} {
		if info, _ := Lookup(name); info.GuaranteesCompletion != want {
			t.Errorf("%s.GuaranteesCompletion = %v, want %v", name, info.GuaranteesCompletion, want)
		}
	}
}

func TestIncumbentDecisions(t *testing.T) {
	o := obsFor(t)
	lo, hi := bounds(o.Market)

	for _, tc := range []struct {
		s    Strategy
		kind cloud.RequestKind
	}{
		{OneTime{}, cloud.OneTime},
		{Persistent{}, cloud.Persistent},
		{Percentile{Q: 90, Kind: cloud.Persistent}, cloud.Persistent},
	} {
		d, err := tc.s.Decide(o)
		if err != nil {
			t.Fatalf("%s: %v", tc.s.Name(), err)
		}
		if d.Abstain || len(d.Tranches) > 0 {
			t.Errorf("%s: wanted a plain bid, got %+v", tc.s.Name(), d)
		}
		if d.Kind != tc.kind {
			t.Errorf("%s: kind = %v, want %v", tc.s.Name(), d.Kind, tc.kind)
		}
		if d.Price < lo || d.Price > hi {
			t.Errorf("%s: bid %v outside [%v, %v]", tc.s.Name(), d.Price, lo, hi)
		}
		if d.Analytic.Price != d.Price {
			t.Errorf("%s: analytic price %v != bid %v", tc.s.Name(), d.Analytic.Price, d.Price)
		}
	}

	if d, err := (OnDemand{}).Decide(o); err != nil || !d.Abstain {
		t.Errorf("on-demand: d=%+v err=%v", d, err)
	}

	// Best-offline consumes the client's history hook.
	if _, err := (BestOffline{}).Decide(o); err == nil {
		t.Error("best-offline without a hook should fail")
	}
	var gotLookback timeslot.Hours
	o2 := o
	o2.BestOffline = func(lb timeslot.Hours) (float64, error) {
		gotLookback = lb
		return 0.031, nil
	}
	d, err := (BestOffline{}).Decide(o2)
	if err != nil {
		t.Fatal(err)
	}
	if gotLookback != 10 {
		t.Errorf("default lookback = %v, want 10h", float64(gotLookback))
	}
	if d.Kind != cloud.OneTime || d.Price != 0.031 {
		t.Errorf("best-offline decision: %+v", d)
	}
}

func TestPercentileName(t *testing.T) {
	if got := (Percentile{Q: 90}).Name(); got != "percentile-90" {
		t.Errorf("name = %q", got)
	}
	if got := (FixedBid{}).Name(); got != "fixed-bid" {
		t.Errorf("name = %q", got)
	}
	if got := (FixedBid{Label: "best-offline"}).Name(); got != "best-offline" {
		t.Errorf("name = %q", got)
	}
}

func TestEvalSwallowsOnlyInfeasible(t *testing.T) {
	m := testMarket(t)
	j := testJob()
	// A persistent bid below the support is infeasible under Eq. 14:
	// Eval reports the bare price instead of failing.
	b, err := Eval(m, j, 0.001, cloud.Persistent)
	if err != nil {
		t.Fatalf("infeasible persistent price: %v", err)
	}
	if b.Price != 0.001 || b.ExpectedCost != 0 {
		t.Errorf("infeasible eval = %+v", b)
	}
	// A broken market is a real error.
	if _, err := Eval(core.Market{}, j, 0.03, cloud.Persistent); err == nil {
		t.Error("nil-price market should fail")
	}
	if _, err := Eval(m, core.Job{}, 0.03, cloud.OneTime); err == nil {
		t.Error("invalid job should fail for one-time eval")
	}
}

func TestPIDDecideAndConvergence(t *testing.T) {
	o := obsFor(t)
	lo, hi := bounds(o.Market)
	p := &PID{}
	d, err := p.Decide(o)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != cloud.Persistent || d.Price < lo || d.Price > hi {
		t.Errorf("initial decision: %+v", d)
	}
	// A spot spike above the bid must pull the bid up; the setpoint
	// includes headroom, so the bid keeps climbing while out-bid.
	start := d.Price
	spike := o
	spike.Spot = 2 * start
	spike.OnSpot = true
	for i := 0; i < 3; i++ {
		spike.IdleSlots = i
		if _, revise := p.Reprice(spike); revise {
			t.Fatalf("revised before patience at idle=%d", i)
		}
	}
	spike.IdleSlots = 3
	d2, revise := p.Reprice(spike)
	if !revise {
		t.Fatal("no revision at patience")
	}
	if d2.Price <= start {
		t.Errorf("bid did not climb: %v -> %v", start, d2.Price)
	}
	if d2.Price > hi {
		t.Errorf("bid %v above ceiling %v", d2.Price, hi)
	}
	// Never revise while the leg is running or off spot.
	run := spike
	run.IdleSlots = 0
	if _, revise := p.Reprice(run); revise {
		t.Error("revised while running")
	}
	od := spike
	od.OnSpot = false
	od.IdleSlots = 99
	if _, revise := p.Reprice(od); revise {
		t.Error("revised an on-demand leg")
	}
}

func TestPortfolioSplit(t *testing.T) {
	o := obsFor(t)
	bid, err := o.Market.PersistentBid(o.Job)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(bid.ExpectedCompletion) / float64(o.Job.Exec)
	if ratio <= 1 {
		t.Skipf("optimum never idles (ratio %v); cannot exercise the split", ratio)
	}
	// A deadline looser than the optimum's expected completion keeps
	// the whole job on spot.
	d, err := Portfolio{Deadline: ratio + 1}.Decide(o)
	if err != nil {
		t.Fatal(err)
	}
	if d.Abstain || len(d.Tranches) != 0 {
		t.Fatalf("wanted pure spot under a loose deadline (ratio %v), got %+v", ratio, d)
	}
	// A deadline halfway into the idle budget forces a genuine split
	// with w ≈ 0.5.
	d, err = Portfolio{Deadline: 1 + (ratio-1)/2}.Decide(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Tranches) != 2 {
		t.Fatalf("wanted a 2-tranche split at ratio %v, got %+v", ratio, d)
	}
	sum := 0.0
	for _, tr := range d.Tranches {
		if tr.Weight <= 0 {
			t.Errorf("non-positive tranche weight %v", tr.Weight)
		}
		sum += tr.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("tranche weights sum to %v", sum)
	}
	if d.Tranches[0].Abstain || d.Tranches[0].Kind != cloud.Persistent {
		t.Errorf("first tranche should be persistent spot: %+v", d.Tranches[0])
	}
	if !d.Tranches[1].Abstain {
		t.Errorf("second tranche should be on-demand: %+v", d.Tranches[1])
	}

	// Eq. 14-infeasible market: a long recovery demands a very high
	// acceptance probability, but the feasibility quantile sits above
	// the on-demand ceiling — no bid up to π̄ qualifies, so the whole
	// job collapses to the on-demand tranche.
	tail := make([]float64, 100)
	for i := range tail {
		tail[i] = 0.3
		if i >= 70 {
			tail[i] = 2.0
		}
	}
	e, err := dist.NewEmpirical(tail, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := Observation{
		Market: core.Market{Price: e, OnDemand: 0.35},
		Job:    core.Job{Exec: 2, Recovery: 1},
	}
	if _, err := bad.Market.PersistentBid(bad.Job); !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("crafted market should be Eq. 14-infeasible, got %v", err)
	}
	d, err = Portfolio{}.Decide(bad)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Abstain {
		t.Errorf("infeasible market should abstain, got %+v", d)
	}
}

func TestAutoSpotReplaceAndAttrition(t *testing.T) {
	o := obsFor(t)
	a := &AutoSpot{}
	d, err := a.Decide(o)
	if err != nil || !d.Abstain {
		t.Fatalf("first leg should be on-demand: %+v err=%v", d, err)
	}
	// Expensive spot: no replacement, streak stays broken.
	exp := o
	exp.Spot = 0.30
	for i := 0; i < 20; i++ {
		if _, revise := a.Reprice(exp); revise {
			t.Fatal("replaced at an expensive spot price")
		}
	}
	// A sustained discount triggers the replacement at the od bid.
	cheap := o
	cheap.Spot = 0.03 // ≪ (1−0.30)·0.35
	var replaced bool
	var d2 Decision
	for i := 0; i < 6; i++ {
		d2, replaced = a.Reprice(cheap)
		if replaced && i < 5 {
			t.Fatalf("replaced after %d cheap slots, patience is 6", i+1)
		}
	}
	if !replaced {
		t.Fatal("no replacement after a full patience streak")
	}
	if d2.Abstain || d2.Kind != cloud.Persistent || d2.Price != o.Market.OnDemand {
		t.Errorf("replacement decision: %+v", d2)
	}
	// On spot and idle past attrition: fall back to on-demand.
	spot := o
	spot.OnSpot = true
	spot.IdleSlots = 12
	d3, revise := a.Reprice(spot)
	if !revise || !d3.Abstain {
		t.Errorf("attrition fallback: %+v revise=%v", d3, revise)
	}
	// Under the attrition window the leg is left alone.
	spot.IdleSlots = 11
	if _, revise := a.Reprice(spot); revise {
		t.Error("fell back before the attrition window")
	}
}
