package strategy

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cloud"
)

// Info is a registered strategy's metadata.
type Info struct {
	// Name is the registry key and league-table label.
	Name string
	// GuaranteesCompletion reports whether the strategy always
	// finishes its job on a sufficiently long trace. One-time bids
	// and the best-offline oracle legitimately die when out-bid, so
	// the tournament's liveness audit excuses their incompletions;
	// everyone else gets no such excuse.
	GuaranteesCompletion bool
	// Description is a one-line summary for listings.
	Description string
}

// Factory builds a fresh strategy instance. Stateful strategies (the
// PID controller, AutoSpot's streak counter) rely on this: one
// instance per run, never shared.
type Factory func() Strategy

type entry struct {
	info    Info
	factory Factory
}

var (
	regMu    sync.RWMutex
	registry = map[string]entry{}
)

// Register adds a strategy to the registry. It panics on an empty
// name or a duplicate — registration happens at init time, where a
// panic is a build error.
func Register(info Info, f Factory) {
	if info.Name == "" || f == nil {
		panic("strategy: Register needs a name and a factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		panic(fmt.Sprintf("strategy: duplicate registration of %q", info.Name))
	}
	registry[info.Name] = entry{info: info, factory: f}
}

// New builds a fresh instance of the named strategy.
func New(name string) (Strategy, error) {
	regMu.RLock()
	e, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("strategy: unknown strategy %q (have %v)", name, Names())
	}
	return e.factory(), nil
}

// Lookup returns the named strategy's metadata.
func Lookup(name string) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e.info, ok
}

// Names lists every registered strategy in sorted order — the
// deterministic iteration order every sweep relies on.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register(Info{Name: "one-time", GuaranteesCompletion: false,
		Description: "Prop. 4 optimal one-time bid (never interrupted, dies if out-bid)"},
		func() Strategy { return OneTime{} })
	Register(Info{Name: "persistent", GuaranteesCompletion: true,
		Description: "Prop. 5 optimal persistent bid (Eq. 14 completion guarantee)"},
		func() Strategy { return Persistent{} })
	Register(Info{Name: "percentile-90", GuaranteesCompletion: true,
		Description: "90th-percentile empirical baseline (§7.1)"},
		func() Strategy { return Percentile{Q: 90, Kind: cloud.Persistent} })
	Register(Info{Name: "best-offline", GuaranteesCompletion: false,
		Description: "retrospective best fixed bid over a 10h lookback (§7.1)"},
		func() Strategy { return BestOffline{} })
	Register(Info{Name: "on-demand", GuaranteesCompletion: true,
		Description: "on-demand baseline (never bids)"},
		func() Strategy { return OnDemand{} })
	Register(Info{Name: "pid", GuaranteesCompletion: true,
		Description: "PID feedback-control bidder (Li–Kihl–Robertsson 2017)"},
		func() Strategy { return &PID{} })
	Register(Info{Name: "portfolio", GuaranteesCompletion: true,
		Description: "spot+on-demand tranche split (Zhang–Ghosh–Aggarwal 2018)"},
		func() Strategy { return Portfolio{} })
	Register(Info{Name: "autospot", GuaranteesCompletion: true,
		Description: "AutoSpotting-style opportunistic replacement"},
		func() Strategy { return &AutoSpot{} })
}
