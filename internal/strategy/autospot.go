package strategy

// An AutoSpotting-style opportunistic-replace heuristic: start safe
// on an on-demand instance, watch the spot market, and replace the
// instance with a spot request bid at the on-demand price once the
// market has offered a deep enough discount for long enough. If the
// spot leg then starves (out-bid and idle past the attrition window),
// fall back to on-demand and start watching again. This is how the
// open-source AutoSpotting controller manages autoscaling groups:
// bid-at-on-demand, replace opportunistically, never let attrition
// stall the workload.

import (
	"repro/internal/cloud"
)

// AutoSpot is the opportunistic-replace heuristic. The registry hands
// every run a fresh instance, so the discount streak never leaks
// across jobs.
type AutoSpot struct {
	// Discount is the minimum relative saving before replacing:
	// spot ≤ (1−Discount)·on-demand (default 0.30).
	Discount float64
	// Patience is how many consecutive discounted slots must be seen
	// before the replacement (default 6 — half an hour).
	Patience int
	// Attrition is how many idle slots a spot leg tolerates before
	// falling back to on-demand (default 12 — one hour).
	Attrition int

	streak int
}

func (a *AutoSpot) knobs() (discount float64, patience, attrition int) {
	discount, patience, attrition = a.Discount, a.Patience, a.Attrition
	if !(discount > 0) || discount >= 1 {
		discount = 0.30
	}
	if patience <= 0 {
		patience = 6
	}
	if attrition <= 0 {
		attrition = 12
	}
	return discount, patience, attrition
}

// Name implements Strategy.
func (a *AutoSpot) Name() string { return "autospot" }

// Decide implements Strategy: the first leg always runs on-demand —
// the workload starts immediately, savings come later.
func (a *AutoSpot) Decide(o Observation) (Decision, error) {
	a.streak = 0
	return Decision{Abstain: true}, nil
}

// Reprice implements Adaptive.
func (a *AutoSpot) Reprice(o Observation) (Decision, bool) {
	discount, patience, attrition := a.knobs()
	if o.OnSpot {
		a.streak = 0
		if o.IdleSlots >= attrition {
			// Attrition: the market took the discount back; finish the
			// remainder on-demand and watch for the next window.
			return Decision{Abstain: true}, true
		}
		return Decision{}, false
	}
	_, od := bounds(o.Market)
	if o.Spot > 0 && o.Spot <= (1-discount)*od {
		a.streak++
	} else {
		a.streak = 0
	}
	if a.streak < patience {
		return Decision{}, false
	}
	// Replace: bid the on-demand price (AutoSpotting's bid), so the
	// spot leg only dies if the market exceeds what we were paying
	// anyway.
	a.streak = 0
	return Decision{Price: od, Kind: cloud.Persistent,
		Analytic: evalLenient(o.Market, o.Job, od, cloud.Persistent)}, true
}
