// Package checkpoint simulates the recovery mechanism the paper's
// experiments configured on their spot instances (§5, §7.1): a
// persistent job saves its state to a separate volume when
// interrupted and restores it when resumed, paying a fixed recovery
// delay t_r of extra running time per interruption. The paper's setup
// used an AMI countdown script plus a DynamoDB table to track
// first-run vs restarted status; the Volume type is that substrate's
// synthetic equivalent (see DESIGN.md).
package checkpoint

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/event"
	"repro/internal/timeslot"
)

// ErrWriteFailed reports that a checkpoint write was lost — the fault
// the chaos layer injects into the volume. Errors carrying it leave
// the previous checkpoint (if any) intact; a job resumed afterwards
// restarts from that older state, redoing the work done since.
var ErrWriteFailed = errors.New("checkpoint: write failed")

// ErrNotFound reports that a job has no durable checkpoint on the
// volume. Export wraps it; migration code branches with errors.Is
// (a job with no checkpoint restarts from scratch in the new region).
var ErrNotFound = errors.New("checkpoint: no record")

// Record is one saved checkpoint.
type Record struct {
	// JobID identifies the job the state belongs to.
	JobID string
	// Slot is the slot index at which the state was saved.
	Slot int
	// Remaining is the work left (in hours of execution time) at
	// save time.
	Remaining timeslot.Hours
	// Resumptions counts how many times the job has been restored.
	Resumptions int
}

// Volume is a durable store of job checkpoints, mimicking the
// separate EBS/DynamoDB volume the paper's jobs wrote to. It is safe
// for concurrent use: MapReduce slaves checkpoint independently.
type Volume struct {
	mu      sync.Mutex
	records map[string]Record
	history []Record // append-only audit log
	fault   func(jobID string, slot int) error
	met     *obs.Registry
	rec     *event.Recorder
	now     func() int
}

// SetMetrics installs a metrics registry recording checkpoint.saves,
// checkpoint.save_failures, checkpoint.restores, and
// checkpoint.deletes. Nil — the default — records nothing.
func (v *Volume) SetMetrics(m *obs.Registry) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.met = m
}

// SetTrace installs a flight recorder emitting CheckpointExport and
// CheckpointImport events for successful migrations. The volume has no
// clock of its own, so now supplies the simulated slot to stamp (the
// owning region's Now, normally); a nil now stamps the record's own
// save slot. Nil rec — the default — records nothing.
func (v *Volume) SetTrace(rec *event.Recorder, now func() int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.rec = rec
	v.now = now
}

// traceSlot resolves the slot to stamp on a migration event. Caller
// holds mu.
func (v *Volume) traceSlot(rec Record) int {
	if v.now != nil {
		return v.now()
	}
	return rec.Slot
}

// SetWriteFault installs a hook consulted before every Save; a non-nil
// return fails the write (the record is not stored). The chaos layer
// uses it to inject ErrWriteFailed; nil removes the hook.
func (v *Volume) SetWriteFault(hook func(jobID string, slot int) error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.fault = hook
}

// NewVolume returns an empty checkpoint volume.
func NewVolume() *Volume {
	return &Volume{records: make(map[string]Record)}
}

// Save stores the job's state, overwriting any previous checkpoint
// for the same job and appending to the audit history.
func (v *Volume) Save(jobID string, slot int, remaining timeslot.Hours) error {
	if jobID == "" {
		return fmt.Errorf("checkpoint: empty job ID")
	}
	if remaining < 0 {
		return fmt.Errorf("checkpoint: negative remaining work %v", float64(remaining))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.fault != nil {
		if err := v.fault(jobID, slot); err != nil {
			v.met.Counter("checkpoint.save_failures").Inc()
			return err
		}
	}
	v.met.Counter("checkpoint.saves").Inc()
	rec := Record{JobID: jobID, Slot: slot, Remaining: remaining,
		Resumptions: v.records[jobID].Resumptions}
	v.records[jobID] = rec
	v.history = append(v.history, rec)
	return nil
}

// Restore returns the job's last checkpoint and counts a resumption.
// The second return is false when the job has never checkpointed —
// a first launch, which needs no recovery.
func (v *Volume) Restore(jobID string) (Record, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	rec, ok := v.records[jobID]
	if !ok {
		return Record{}, false
	}
	v.met.Counter("checkpoint.restores").Inc()
	rec.Resumptions++
	v.records[jobID] = rec
	return rec, true
}

// Peek returns the job's last checkpoint without counting a
// resumption.
func (v *Volume) Peek(jobID string) (Record, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	rec, ok := v.records[jobID]
	return rec, ok
}

// Export returns the job's last durable checkpoint for migration to
// another volume, without counting a resumption. Only records that
// survived Save are visible here: a torn (failed) write never reaches
// the store, so migration always carries the last durable state. Jobs
// that have never checkpointed report an error wrapping ErrNotFound.
func (v *Volume) Export(jobID string) (Record, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	rec, ok := v.records[jobID]
	if !ok {
		return Record{}, fmt.Errorf("%w for job %q", ErrNotFound, jobID)
	}
	v.met.Counter("checkpoint.exports").Inc()
	if v.rec != nil {
		v.rec.Emit(&event.Event{Kind: event.CheckpointExport, Slot: v.traceSlot(rec),
			Job: jobID, Subject: jobID, Value: float64(rec.Remaining)})
	}
	return rec, nil
}

// Import installs a record exported from another volume — the
// cross-region half of a migration. It goes through the same write
// path as Save: the fault hook is consulted (an injected failure loses
// the import, leaving any previous record for the job intact), and the
// audit history records the arrival.
func (v *Volume) Import(rec Record) error {
	if rec.JobID == "" {
		return fmt.Errorf("checkpoint: import of record with empty job ID")
	}
	if rec.Remaining < 0 {
		return fmt.Errorf("checkpoint: import of negative remaining work %v", float64(rec.Remaining))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.fault != nil {
		if err := v.fault(rec.JobID, rec.Slot); err != nil {
			v.met.Counter("checkpoint.save_failures").Inc()
			return err
		}
	}
	v.met.Counter("checkpoint.imports").Inc()
	if v.rec != nil {
		v.rec.Emit(&event.Event{Kind: event.CheckpointImport, Slot: v.traceSlot(rec),
			Job: rec.JobID, Subject: rec.JobID, Value: float64(rec.Remaining)})
	}
	v.records[rec.JobID] = rec
	v.history = append(v.history, rec)
	return nil
}

// Delete removes a job's checkpoint (e.g. after completion).
func (v *Volume) Delete(jobID string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.records[jobID]; ok {
		v.met.Counter("checkpoint.deletes").Inc()
	}
	delete(v.records, jobID)
}

// Jobs lists the job IDs with live checkpoints, sorted.
func (v *Volume) Jobs() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.records))
	for id := range v.records {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// History returns a copy of the audit log.
func (v *Volume) History() []Record {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]Record, len(v.history))
	copy(out, v.history)
	return out
}
