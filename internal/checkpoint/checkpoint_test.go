package checkpoint

import (
	"sync"
	"testing"

	"repro/internal/timeslot"
)

func TestSaveRestore(t *testing.T) {
	v := NewVolume()
	if err := v.Save("job-1", 10, timeslot.Hours(0.5)); err != nil {
		t.Fatal(err)
	}
	rec, ok := v.Restore("job-1")
	if !ok {
		t.Fatal("checkpoint missing")
	}
	if rec.Slot != 10 || float64(rec.Remaining) != 0.5 {
		t.Errorf("record = %+v", rec)
	}
	if rec.Resumptions != 1 {
		t.Errorf("resumptions = %d, want 1", rec.Resumptions)
	}
	// A second restore counts again.
	rec, _ = v.Restore("job-1")
	if rec.Resumptions != 2 {
		t.Errorf("resumptions = %d, want 2", rec.Resumptions)
	}
	// Peek does not count.
	rec, ok = v.Peek("job-1")
	if !ok || rec.Resumptions != 2 {
		t.Errorf("peek = %+v, %v", rec, ok)
	}
}

func TestRestoreMissing(t *testing.T) {
	v := NewVolume()
	if _, ok := v.Restore("ghost"); ok {
		t.Error("restored a job that never checkpointed")
	}
}

func TestSaveValidation(t *testing.T) {
	v := NewVolume()
	if err := v.Save("", 0, 1); err == nil {
		t.Error("empty job ID accepted")
	}
	if err := v.Save("j", 0, -1); err == nil {
		t.Error("negative remaining accepted")
	}
}

func TestSavePreservesResumptionCount(t *testing.T) {
	v := NewVolume()
	v.Save("j", 1, 1)
	v.Restore("j")
	v.Save("j", 2, 0.5) // overwrite after resuming
	rec, _ := v.Peek("j")
	if rec.Resumptions != 1 {
		t.Errorf("resumptions lost on save: %d", rec.Resumptions)
	}
	if rec.Slot != 2 {
		t.Errorf("slot = %d", rec.Slot)
	}
}

func TestDeleteAndJobs(t *testing.T) {
	v := NewVolume()
	v.Save("b", 0, 1)
	v.Save("a", 0, 1)
	if got := v.Jobs(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Jobs = %v", got)
	}
	v.Delete("a")
	if got := v.Jobs(); len(got) != 1 || got[0] != "b" {
		t.Errorf("Jobs after delete = %v", got)
	}
	v.Delete("ghost") // no-op
}

func TestHistoryAuditLog(t *testing.T) {
	v := NewVolume()
	v.Save("j", 1, 1)
	v.Save("j", 2, 0.5)
	h := v.History()
	if len(h) != 2 || h[0].Slot != 1 || h[1].Slot != 2 {
		t.Errorf("history = %+v", h)
	}
	// The returned slice is a copy.
	h[0].Slot = 99
	if v.History()[0].Slot == 99 {
		t.Error("History shares storage")
	}
}

func TestConcurrentAccess(t *testing.T) {
	v := NewVolume()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			id := string(rune('a' + n%4))
			for j := 0; j < 200; j++ {
				v.Save(id, j, timeslot.Hours(float64(j)))
				v.Restore(id)
				v.Peek(id)
				v.Jobs()
			}
		}(i)
	}
	wg.Wait()
	if len(v.History()) != 16*200 {
		t.Errorf("history length %d", len(v.History()))
	}
}
