package checkpoint

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/retry"
)

// failNext injects ErrWriteFailed into the next n writes.
func failNext(v *Volume, n *int) {
	v.SetWriteFault(func(jobID string, slot int) error {
		if *n > 0 {
			*n--
			return retry.Transient(fmt.Errorf("%w: injected", ErrWriteFailed))
		}
		return nil
	})
}

// TestExportImportRoundTrip: a migrated record arrives on the target
// volume exactly as exported, lands in the audit history, and does not
// count as a resumption on either side.
func TestExportImportRoundTrip(t *testing.T) {
	src, dst := NewVolume(), NewVolume()
	if err := src.Save("job", 7, 1.5); err != nil {
		t.Fatal(err)
	}
	rec, err := src.Export("job")
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Import(rec); err != nil {
		t.Fatal(err)
	}
	got, ok := dst.Peek("job")
	if !ok || got != rec {
		t.Fatalf("imported record %+v, want %+v", got, rec)
	}
	if got.Resumptions != 0 {
		t.Errorf("migration counted %d resumptions", got.Resumptions)
	}
	if h := dst.History(); len(h) != 1 || h[0] != rec {
		t.Errorf("audit history %+v, want the imported record", h)
	}
	if _, err := dst.Export("other"); !errors.Is(err, ErrNotFound) {
		t.Errorf("export of unknown job: %v, want ErrNotFound", err)
	}
}

// TestExportSeesOnlyDurableState: a failed Save must not tear the
// store — Export returns the last record that actually survived a
// write, never a partial or newer-but-lost one.
func TestExportSeesOnlyDurableState(t *testing.T) {
	v := NewVolume()
	if err := v.Save("job", 3, 2.0); err != nil {
		t.Fatal(err)
	}
	n := 1
	failNext(v, &n)
	if err := v.Save("job", 9, 0.5); !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("injected save: %v, want ErrWriteFailed", err)
	}
	rec, err := v.Export("job")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Slot != 3 || rec.Remaining != 2.0 {
		t.Errorf("export after failed save = %+v, want the slot-3 durable record", rec)
	}
	// The lost write never reached the audit log either.
	if h := v.History(); len(h) != 1 {
		t.Errorf("audit log has %d entries, want 1: torn write leaked", len(h))
	}
	// The next durable save is visible again.
	if err := v.Save("job", 11, 0.25); err != nil {
		t.Fatal(err)
	}
	if rec, _ := v.Export("job"); rec.Slot != 11 || rec.Remaining != 0.25 {
		t.Errorf("export after recovery = %+v, want the slot-11 record", rec)
	}
}

// TestExportNothingDurable: every write lost → no record, ErrNotFound
// — the migration caller restarts the job from scratch, never from a
// torn record.
func TestExportNothingDurable(t *testing.T) {
	v := NewVolume()
	n := 100
	failNext(v, &n)
	for i := 0; i < 5; i++ {
		if err := v.Save("job", i, 1.0); !errors.Is(err, ErrWriteFailed) {
			t.Fatalf("save %d: %v, want ErrWriteFailed", i, err)
		}
	}
	if _, err := v.Export("job"); !errors.Is(err, ErrNotFound) {
		t.Errorf("export: %v, want ErrNotFound", err)
	}
	if h := v.History(); len(h) != 0 {
		t.Errorf("audit log has %d entries, want 0", len(h))
	}
}

// TestImportWriteFailureKeepsOldRecord: a failed Import loses the
// transfer but leaves the target's previous record for the job intact.
func TestImportWriteFailureKeepsOldRecord(t *testing.T) {
	v := NewVolume()
	if err := v.Save("job", 2, 3.0); err != nil {
		t.Fatal(err)
	}
	n := 1
	failNext(v, &n)
	err := v.Import(Record{JobID: "job", Slot: 8, Remaining: 0.5})
	if !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("injected import: %v, want ErrWriteFailed", err)
	}
	rec, err := v.Export("job")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Slot != 2 || rec.Remaining != 3.0 {
		t.Errorf("record after failed import = %+v, want the original", rec)
	}
	// Retrying the import succeeds once the fault clears.
	if err := v.Import(Record{JobID: "job", Slot: 8, Remaining: 0.5}); err != nil {
		t.Fatal(err)
	}
	if rec, _ := v.Export("job"); rec.Slot != 8 || rec.Remaining != 0.5 {
		t.Errorf("record after retried import = %+v", rec)
	}
}

// TestImportValidation: malformed records are rejected before the
// write path.
func TestImportValidation(t *testing.T) {
	v := NewVolume()
	if err := v.Import(Record{JobID: "", Slot: 1, Remaining: 1}); err == nil {
		t.Error("empty job ID accepted")
	}
	if err := v.Import(Record{JobID: "job", Slot: 1, Remaining: -1}); err == nil {
		t.Error("negative remaining accepted")
	}
}
