package chaos

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/client"
	"repro/internal/cloud"
	"repro/internal/instances"
	"repro/internal/job"
	"repro/internal/retry"
	"repro/internal/timeslot"
	"repro/internal/trace"
)

// mustNew builds an injector for a config the test knows is valid.
func mustNew(t *testing.T, cfg Config) *Injector {
	t.Helper()
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func flatRegion(t *testing.T, prices []float64) *cloud.Region {
	t.Helper()
	tr, err := trace.New(instances.R3XLarge, timeslot.NewGrid(timeslot.DefaultSlot), prices)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cloud.NewRegion(tr)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// persistentRun runs one persistent job over a generated trace with
// the given injector (nil: fault-free) and returns its report.
func persistentRun(t *testing.T, inj *Injector) client.Report {
	t.Helper()
	tr, err := trace.Generate(instances.R3XLarge, trace.GenOptions{Days: 63, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	region, err := cloud.NewRegion(tr)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := client.New(region)
	if err != nil {
		t.Fatal(err)
	}
	if inj != nil {
		inj.Arm(region, cl.Volume)
	}
	if err := cl.Skip(61 * 288); err != nil {
		t.Fatal(err)
	}
	rep, err := cl.RunPersistent(job.Spec{ID: "chaos", Type: instances.R3XLarge, Exec: 1, Recovery: timeslot.Seconds(30)})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestZeroRateBitIdentical is the acceptance criterion: a
// chaos-wrapped region with every fault rate at zero reproduces the
// fault-free run bit for bit.
func TestZeroRateBitIdentical(t *testing.T) {
	base := persistentRun(t, nil)
	wrapped := persistentRun(t, mustNew(t, Config{Seed: 99}))
	if !reflect.DeepEqual(base, wrapped) {
		t.Errorf("zero-rate chaos diverged:\nfault-free: %+v\nwrapped:    %+v", base, wrapped)
	}
	zeroUniform := persistentRun(t, mustNew(t, Uniform(0, 3)))
	if !reflect.DeepEqual(base, zeroUniform) {
		t.Errorf("Uniform(0) chaos diverged:\nfault-free: %+v\nwrapped:    %+v", base, zeroUniform)
	}
}

// TestDeterministicPerSeed: identical seeds give identical runs and
// identical fault logs.
func TestDeterministicPerSeed(t *testing.T) {
	inj1 := mustNew(t, Uniform(0.08, 42))
	rep1 := persistentRun(t, inj1)
	inj2 := mustNew(t, Uniform(0.08, 42))
	rep2 := persistentRun(t, inj2)
	if !reflect.DeepEqual(rep1, rep2) {
		t.Errorf("same seed diverged:\n%+v\n%+v", rep1, rep2)
	}
	if inj1.Stats() != inj2.Stats() {
		t.Errorf("same seed, different fault logs: %+v vs %+v", inj1.Stats(), inj2.Stats())
	}
	if inj1.Stats().Total() == 0 {
		t.Error("rate 0.08 injected no faults at all")
	}
}

func TestAPIFaultAndBurst(t *testing.T) {
	in := mustNew(t, Config{APIFaultRate: 1, APIBurst: 3})
	for i := 0; i < 3; i++ {
		err := in.APIFault(cloud.OpSubmit, i)
		if err == nil {
			t.Fatalf("call %d: no injected fault at rate 1", i)
		}
		if !retry.IsTransient(err) {
			t.Fatalf("call %d: injected fault not transient: %v", i, err)
		}
	}
	if got := in.Stats().APIFaults; got != 3 {
		t.Errorf("APIFaults = %d, want 3", got)
	}
	// Zero rate: never a fault, no RNG consumed.
	quiet := mustNew(t, Config{})
	for i := 0; i < 100; i++ {
		if err := quiet.APIFault(cloud.OpCancel, i); err != nil {
			t.Fatalf("zero-rate injector faulted: %v", err)
		}
	}
}

func TestDegradeHistoryNeverMutatesSource(t *testing.T) {
	tr, err := trace.New(instances.R3XLarge, timeslot.NewGrid(timeslot.DefaultSlot),
		[]float64{0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10})
	if err != nil {
		t.Fatal(err)
	}
	orig := append([]float64(nil), tr.Prices...)
	in := mustNew(t, Config{DropRate: 0.9, DupRate: 0.9, CorruptRate: 0.9, StaleProb: 1, StaleSlots: 2})
	out := in.DegradeHistory(tr, 7)
	if !reflect.DeepEqual(tr.Prices, orig) {
		t.Fatal("DegradeHistory mutated the source trace")
	}
	if out == tr {
		t.Fatal("expected a degraded copy at rate ~1")
	}
	if out.Len() != tr.Len()-2 {
		t.Errorf("stale window: len %d, want %d", out.Len(), tr.Len()-2)
	}
	for _, p := range out.Prices {
		if !(p >= 0) {
			t.Errorf("degraded trace has invalid price %v", p)
		}
	}
	st := in.Stats()
	if st.StaleServes != 1 || st.DroppedSlots+st.DupedSlots+st.CorruptedSlots == 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestLaunchBlockedDrawsOncePerSlot(t *testing.T) {
	in := mustNew(t, Config{OutageRate: 0.5, OutageSlots: 3, Seed: 5})
	// Ask many times about the same slot: the answer must be stable
	// and the outage schedule must not advance.
	first := in.LaunchBlocked(instances.R3XLarge, 10)
	for i := 0; i < 20; i++ {
		if got := in.LaunchBlocked(instances.R3XLarge, 10); got != first {
			t.Fatal("LaunchBlocked changed its answer within one slot")
		}
	}
	outages := in.Stats().Outages
	// Walking forward must eventually start (and end) outages.
	blockedSlots := 0
	for s := 11; s < 200; s++ {
		if in.LaunchBlocked(instances.R3XLarge, s) {
			blockedSlots++
		}
	}
	if in.Stats().Outages <= outages {
		t.Error("no outages over 189 slots at rate 0.5")
	}
	if blockedSlots == 0 || blockedSlots == 189 {
		t.Errorf("blockedSlots = %d, want strictly between 0 and 189", blockedSlots)
	}
}

// TestOutbidDelayKeepsBilling: a delayed out-bid notice keeps the
// instance running — and billing at the (higher) spot price — until
// the notice lands.
func TestOutbidDelayKeepsBilling(t *testing.T) {
	// Slot:  0     1     2     3     4     5     6     7
	prices := []float64{0.03, 0.03, 0.03, 0.03, 0.10, 0.10, 0.10, 0.10}
	slotH := float64(timeslot.DefaultSlot)

	run := func(inj *Injector) (*cloud.Region, *cloud.SpotRequest) {
		r := flatRegion(t, prices)
		if inj != nil {
			r.SetInjector(inj)
		}
		reqs, err := r.RequestSpotInstances(instances.R3XLarge, 0.05, cloud.OneTime, 1)
		if err != nil {
			t.Fatal(err)
		}
		for r.Now()+1 < r.Horizon() {
			if err := r.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		return r, reqs[0]
	}

	base, baseReq := run(nil)
	delayed, delReq := run(mustNew(t, Config{OutbidDelayProb: 1, OutbidDelaySlots: 2}))

	baseInst, err := base.Instance(baseReq.InstanceID)
	if err != nil {
		t.Fatal(err)
	}
	delInst, err := delayed.Instance(delReq.InstanceID)
	if err != nil {
		t.Fatal(err)
	}
	if baseInst.TerminatedSlot != 4 {
		t.Fatalf("fault-free termination at slot %d, want 4", baseInst.TerminatedSlot)
	}
	if delInst.TerminatedSlot != 6 {
		t.Fatalf("delayed termination at slot %d, want 6", delInst.TerminatedSlot)
	}
	// Two extra slots billed at the 0.10 spot price.
	extra := delInst.Cost - baseInst.Cost
	want := 2 * 0.10 * slotH
	if diff := extra - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("delayed billing extra = %v, want %v", extra, want)
	}
	if !delInst.ProviderTerminated {
		t.Error("delayed termination not attributed to the provider")
	}
}

// TestCapacityOutageDefersLaunch: a blocked market leaves the request
// open; it launches when the outage lifts.
func TestCapacityOutageDefersLaunch(t *testing.T) {
	prices := []float64{0.03, 0.03, 0.03, 0.03, 0.03, 0.03}
	r := flatRegion(t, prices)
	// Deterministic outage: rate 1 starts an outage at every eligible
	// slot — but the schedule only re-arms after OutageSlots pass, so
	// slots 1..3 are blocked and slot 4 re-blocks. Use a two-slot
	// outage and check the request stays Open while blocked.
	in := mustNew(t, Config{OutageRate: 1, OutageSlots: 2})
	r.SetInjector(in)
	reqs, err := r.RequestSpotInstances(instances.R3XLarge, 0.05, cloud.Persistent, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Tick(); err != nil { // slot 1: outage started at slot 1
		t.Fatal(err)
	}
	if reqs[0].State != cloud.Open {
		t.Fatalf("state during outage: %v, want open", reqs[0].State)
	}
	if in.Stats().Outages == 0 {
		t.Fatal("no outage recorded")
	}
}

func TestCheckpointFaultTyped(t *testing.T) {
	in := mustNew(t, Config{CheckpointFailRate: 1})
	err := in.CheckpointFault("job", 3)
	if err == nil {
		t.Fatal("rate-1 checkpoint fault did not fire")
	}
	if !retry.IsTransient(err) {
		t.Error("checkpoint fault not marked transient")
	}
}

func TestCSVCorruptionsNeverMutateInput(t *testing.T) {
	base := []byte("Timestamp,InstanceType,ProductDescription,SpotPrice\n" +
		"2014-08-14T00:00:00Z,r3.xlarge,Linux/UNIX,0.03\n" +
		"2014-08-14T00:05:00Z,r3.xlarge,Linux/UNIX,0.031\n" +
		"2014-08-14T00:10:00Z,r3.xlarge,Linux/UNIX,0.03\n")
	want := append([]byte(nil), base...)
	rng := rand.New(rand.NewSource(1))
	for _, c := range CSVCorruptions {
		for i := 0; i < 50; i++ {
			_ = c.Apply(rng, base)
			if string(base) != string(want) {
				t.Fatalf("%s mutated its input", c.Name)
			}
		}
	}
}

func TestCSVCorruptionsProduceChanges(t *testing.T) {
	base := []byte("Timestamp,InstanceType,ProductDescription,SpotPrice\n" +
		"2014-08-14T00:00:00Z,r3.xlarge,Linux/UNIX,0.03\n" +
		"2014-08-14T00:05:00Z,r3.xlarge,Linux/UNIX,0.031\n" +
		"2014-08-14T00:10:00Z,r3.xlarge,Linux/UNIX,0.03\n" +
		"2014-08-14T00:15:00Z,r3.xlarge,Linux/UNIX,0.032\n")
	rng := rand.New(rand.NewSource(2))
	for _, c := range CSVCorruptions {
		changed := false
		for i := 0; i < 20 && !changed; i++ {
			if string(c.Apply(rng, base)) != string(base) {
				changed = true
			}
		}
		if !changed {
			t.Errorf("%s never changed the input in 20 tries", c.Name)
		}
	}
}
