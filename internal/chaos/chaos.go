// Package chaos is the deterministic fault-injection layer for the
// simulated cloud. The paper's client (Fig. 1) ran against real EC2,
// where DescribeSpotPriceHistory calls failed transiently, price
// telemetry arrived late or with gaps, capacity vanished, and out-bid
// notices lagged; the reproduction's substrate is pristine unless this
// package perturbs it. An Injector implements cloud.FaultInjector and
// plugs into a Region via SetInjector; a seeded Config makes every
// fault sequence reproducible, and a zero-rate Config is
// behavior-preserving — the chaos-wrapped region is bit-identical to a
// fault-free one (see the acceptance test in chaos_test.go).
package chaos

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/cloud"
	"repro/internal/instances"
	"repro/internal/retry"
	"repro/internal/trace"
)

// Config sets the fault process. All rates are probabilities in [0,1];
// a zero value disables that fault entirely (no RNG is consumed for
// it, so partial configs stay reproducible).
type Config struct {
	// Seed drives all randomness (default 1).
	Seed int64

	// APIFaultRate is the per-call probability that a region API call
	// (price history, submit, cancel, terminate) fails transiently.
	APIFaultRate float64
	// APIBurst forces that many consecutive calls of the same
	// operation to fail once a fault fires (default 1) — EC2 errors
	// clustered.
	APIBurst int

	// DropRate is the per-slot probability a price-history entry is
	// lost in telemetry; the feed holds the last seen value.
	DropRate float64
	// DupRate is the per-slot probability an entry is duplicated over
	// its successor.
	DupRate float64
	// CorruptRate is the per-slot probability an entry is corrupted
	// to a wrong (but parseable) price.
	CorruptRate float64
	// StaleProb is the per-fetch probability the whole history window
	// is stale: its newest StaleSlots slots are missing.
	StaleProb float64
	// StaleSlots is the staleness lag (default 36 slots = 3 hours).
	StaleSlots int

	// OutageRate is the per-slot probability a capacity outage starts
	// in a spot market: launches are refused for OutageSlots slots
	// even for bids above the spot price.
	OutageRate float64
	// OutageSlots is the outage length (default 6 slots = 30 min).
	OutageSlots int

	// RegionOutageRate is the per-slot probability a region-wide outage
	// starts: every spot market refuses launches AND every region API
	// call fails transiently for RegionOutageSlots slots. Unlike
	// OutageRate's independent per-market episodes, the faults are
	// correlated across instance types — the signature of a real
	// availability-zone incident, and the event the fleet controller's
	// circuit breakers are built to survive.
	RegionOutageRate float64
	// RegionOutageSlots is the region outage length (default 12 slots =
	// 1 hour).
	RegionOutageSlots int
	// RegionOutageAfter suppresses region-outage draws before this
	// slot: the schedule only starts rolling there. With rate 1 it
	// pins a deterministic failure window — "the region dies at slot
	// k" — which failover tests and forced-outage drills rely on.
	RegionOutageAfter int

	// OutbidDelayProb is the probability an out-bid notice is delayed:
	// the instance keeps running — and billing — for OutbidDelaySlots
	// more slots, like EC2's two-minute warning.
	OutbidDelayProb float64
	// OutbidDelaySlots is the notice lag (default 1 slot).
	OutbidDelaySlots int

	// CheckpointFailRate is the per-save probability a checkpoint
	// write fails: progress since the last durable checkpoint is lost.
	CheckpointFailRate float64
}

// Uniform returns a Config whose every fault intensity scales with one
// knob: rate 0 is fault-free, rate ≈ 0.1 is a rough day on EC2. The
// chaos experiment sweeps this knob.
func Uniform(rate float64, seed int64) Config {
	return Config{
		Seed:               seed,
		APIFaultRate:       rate,
		APIBurst:           2,
		DropRate:           rate,
		DupRate:            rate / 2,
		CorruptRate:        rate / 2,
		StaleProb:          rate,
		OutageRate:         rate / 20,
		OutbidDelayProb:    rate,
		CheckpointFailRate: rate,
	}
}

// ConfigError reports one invalid configuration field. It is the
// typed error returned by Config.Validate, Schedule.Validate, and the
// constructors that call them.
type ConfigError struct {
	// Field names the offending field.
	Field string
	// Value is the rejected value (durations reported as float64).
	Value float64
	// Reason says what constraint it violates.
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("chaos: invalid %s = %v: %s", e.Field, e.Value, e.Reason)
}

// Validate checks every rate is a probability in [0, 1] and every
// duration is non-negative, returning a typed *ConfigError naming the
// first offender. Out-of-range rates used to be documented but
// silently accepted; New and cloud.Region.SetInjector now reject them.
func (c Config) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"APIFaultRate", c.APIFaultRate},
		{"DropRate", c.DropRate},
		{"DupRate", c.DupRate},
		{"CorruptRate", c.CorruptRate},
		{"StaleProb", c.StaleProb},
		{"OutageRate", c.OutageRate},
		{"RegionOutageRate", c.RegionOutageRate},
		{"OutbidDelayProb", c.OutbidDelayProb},
		{"CheckpointFailRate", c.CheckpointFailRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return &ConfigError{Field: r.name, Value: r.v, Reason: "rate outside [0, 1]"}
		}
	}
	durations := []struct {
		name string
		v    int
	}{
		{"APIBurst", c.APIBurst},
		{"StaleSlots", c.StaleSlots},
		{"OutageSlots", c.OutageSlots},
		{"RegionOutageSlots", c.RegionOutageSlots},
		{"RegionOutageAfter", c.RegionOutageAfter},
		{"OutbidDelaySlots", c.OutbidDelaySlots},
	}
	for _, d := range durations {
		if d.v < 0 {
			return &ConfigError{Field: d.name, Value: float64(d.v), Reason: "negative duration"}
		}
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.APIBurst < 1 {
		c.APIBurst = 1
	}
	if c.StaleSlots <= 0 {
		c.StaleSlots = 36
	}
	if c.OutageSlots <= 0 {
		c.OutageSlots = 6
	}
	if c.RegionOutageSlots <= 0 {
		c.RegionOutageSlots = 12
	}
	if c.OutbidDelaySlots <= 0 {
		c.OutbidDelaySlots = 1
	}
	return c
}

// Stats counts the faults an Injector actually delivered.
type Stats struct {
	// APIFaults counts failed API calls (bursts included).
	APIFaults int
	// StaleServes counts history fetches answered with a stale window.
	StaleServes int
	// DroppedSlots, DupedSlots, CorruptedSlots count degraded
	// telemetry entries across all fetches.
	DroppedSlots, DupedSlots, CorruptedSlots int
	// Outages counts capacity-outage episodes started.
	Outages int
	// RegionOutages counts region-wide outage episodes started.
	RegionOutages int
	// DelayedOutbids counts out-bid notices that were delayed.
	DelayedOutbids int
	// CheckpointFailures counts failed checkpoint writes.
	CheckpointFailures int
}

// Total sums every fault delivered.
func (s Stats) Total() int {
	return s.APIFaults + s.StaleServes + s.DroppedSlots + s.DupedSlots +
		s.CorruptedSlots + s.Outages + s.RegionOutages + s.DelayedOutbids +
		s.CheckpointFailures
}

// Injector implements cloud.FaultInjector (plus a checkpoint write
// hook) from a seeded Config. It is safe for concurrent use, but
// reproducibility holds only when the region is driven from one
// goroutine — give each parallel simulation its own Injector.
type Injector struct {
	mu    sync.Mutex
	cfg   Config
	rng   *rand.Rand
	burst map[cloud.Op]int // remaining forced failures per op

	// per-type outage schedule, advanced lazily slot by slot
	outageNext  map[instances.Type]int // first slot not yet decided
	outageUntil map[instances.Type]int // outage active while slot < until

	// region-wide outage schedule, shared by every instance type and
	// every API operation, advanced lazily like the per-type one
	regionNext  int
	regionUntil int

	stats Stats
}

// New returns an injector for the config, rejecting invalid configs
// with a typed *ConfigError.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Injector{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		burst:       make(map[cloud.Op]int),
		outageNext:  make(map[instances.Type]int),
		outageUntil: make(map[instances.Type]int),
	}, nil
}

// Config returns the injector's (defaulted) configuration.
func (in *Injector) Config() Config { return in.cfg }

// Validate implements the optional injector-validation interface
// consulted by cloud.Region.SetInjector.
func (in *Injector) Validate() error { return in.cfg.Validate() }

// Stats returns a snapshot of the faults delivered so far.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// APIFault implements cloud.FaultInjector: with probability
// APIFaultRate the call fails with a transient (retryable) error, and
// the next APIBurst−1 calls of the same operation fail with it.
func (in *Injector) APIFault(op cloud.Op, slot int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.regionOutage(slot) {
		return transientf("chaos: region outage fails %s at slot %d", op, slot)
	}
	if in.burst[op] > 0 {
		in.burst[op]--
		in.stats.APIFaults++
		return transientf("chaos: injected %s failure (burst) at slot %d", op, slot)
	}
	if in.cfg.APIFaultRate <= 0 {
		return nil
	}
	if in.rng.Float64() >= in.cfg.APIFaultRate {
		return nil
	}
	in.burst[op] = in.cfg.APIBurst - 1
	in.stats.APIFaults++
	return transientf("chaos: injected %s failure at slot %d", op, slot)
}

// DegradeHistory implements cloud.FaultInjector: it may serve a stale
// window and drop, duplicate, or corrupt individual entries. The input
// trace is never mutated — it shares storage with the live market.
func (in *Injector) DegradeHistory(tr *trace.Trace, slot int) *trace.Trace {
	in.mu.Lock()
	defer in.mu.Unlock()
	c := in.cfg
	if c.StaleProb <= 0 && c.DropRate <= 0 && c.DupRate <= 0 && c.CorruptRate <= 0 {
		return tr
	}
	out := tr
	if c.StaleProb > 0 && tr.Len() > c.StaleSlots+1 && in.rng.Float64() < c.StaleProb {
		if w, err := tr.Window(0, tr.Len()-c.StaleSlots); err == nil {
			out = w
			in.stats.StaleServes++
		}
	}
	if c.DropRate <= 0 && c.DupRate <= 0 && c.CorruptRate <= 0 {
		return out
	}
	out = out.Clone()
	p := out.Prices
	if c.DropRate > 0 {
		for i := 1; i < len(p); i++ {
			if in.rng.Float64() < c.DropRate {
				p[i] = p[i-1] // telemetry gap: the feed holds the last value
				in.stats.DroppedSlots++
			}
		}
	}
	if c.DupRate > 0 {
		for i := 0; i < len(p)-1; i++ {
			if in.rng.Float64() < c.DupRate {
				p[i+1] = p[i]
				in.stats.DupedSlots++
			}
		}
	}
	if c.CorruptRate > 0 {
		for i := range p {
			if in.rng.Float64() < c.CorruptRate {
				p[i] = corruptPrice(in.rng, p[i])
				in.stats.CorruptedSlots++
			}
		}
	}
	return out
}

// LaunchBlocked implements cloud.FaultInjector: the type's spot market
// refuses launches while a capacity outage is active. Outage starts
// are drawn once per (type, slot) regardless of how many pending
// requests ask, so determinism doesn't depend on the request count.
func (in *Injector) LaunchBlocked(t instances.Type, slot int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.regionOutage(slot) {
		return true
	}
	if in.cfg.OutageRate <= 0 {
		return false
	}
	for s := in.outageNext[t]; s <= slot; s++ {
		if s >= in.outageUntil[t] && in.rng.Float64() < in.cfg.OutageRate {
			in.outageUntil[t] = s + in.cfg.OutageSlots
			in.stats.Outages++
		}
	}
	in.outageNext[t] = slot + 1
	return slot < in.outageUntil[t]
}

// regionOutage advances the region-wide outage schedule through slot
// and reports whether an outage is active there. Starts are drawn once
// per slot no matter which caller (APIFault, LaunchBlocked) asks first
// or how often, so determinism doesn't depend on call multiplicity.
// A zero rate consumes no randomness. Callers hold in.mu.
func (in *Injector) regionOutage(slot int) bool {
	if in.cfg.RegionOutageRate <= 0 {
		return false
	}
	for s := in.regionNext; s <= slot; s++ {
		if s < in.cfg.RegionOutageAfter {
			continue
		}
		if s >= in.regionUntil && in.rng.Float64() < in.cfg.RegionOutageRate {
			in.regionUntil = s + in.cfg.RegionOutageSlots
			in.stats.RegionOutages++
		}
	}
	if slot+1 > in.regionNext {
		in.regionNext = slot + 1
	}
	return slot < in.regionUntil
}

// OutbidDelay implements cloud.FaultInjector: with probability
// OutbidDelayProb the out-bid notice lags OutbidDelaySlots slots.
func (in *Injector) OutbidDelay(slot int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.OutbidDelayProb <= 0 {
		return 0
	}
	if in.rng.Float64() >= in.cfg.OutbidDelayProb {
		return 0
	}
	in.stats.DelayedOutbids++
	return in.cfg.OutbidDelaySlots
}

// CheckpointFault is the checkpoint.Volume write hook: with
// probability CheckpointFailRate the save fails with
// checkpoint.ErrWriteFailed (wrapped transient), losing any progress
// since the previous durable checkpoint.
func (in *Injector) CheckpointFault(jobID string, slot int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.CheckpointFailRate <= 0 {
		return nil
	}
	if in.rng.Float64() >= in.cfg.CheckpointFailRate {
		return nil
	}
	in.stats.CheckpointFailures++
	return retry.Transient(fmt.Errorf("%w: chaos: injected write failure for %s at slot %d",
		checkpoint.ErrWriteFailed, jobID, slot))
}

// Arm installs the injector on a region and, when vol is non-nil, its
// checkpoint volume — one call wires the whole fault surface.
func (in *Injector) Arm(r *cloud.Region, vol *checkpoint.Volume) error {
	if err := r.SetInjector(in); err != nil {
		return err
	}
	if vol != nil {
		vol.SetWriteFault(in.CheckpointFault)
	}
	return nil
}

// corruptPrice returns a wrong but valid (finite, non-negative) price:
// zeroed, halved, doubled, or spiked tenfold.
func corruptPrice(rng *rand.Rand, p float64) float64 {
	switch rng.Intn(4) {
	case 0:
		return 0
	case 1:
		return p / 2
	case 2:
		return p * 2
	default:
		return p * 10
	}
}

func transientf(format string, args ...any) error {
	return retry.Transient(fmt.Errorf(format, args...))
}
