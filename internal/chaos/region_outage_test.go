package chaos

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/instances"
	"repro/internal/retry"
)

// TestRegionOutageCorrelatesFaults: during a region-wide outage every
// API op fails transiently AND every market refuses launches — the
// correlated incident signature, unlike the per-market OutageRate.
func TestRegionOutageCorrelatesFaults(t *testing.T) {
	in := mustNew(t, Config{RegionOutageRate: 1, RegionOutageSlots: 4})
	for _, op := range []cloud.Op{cloud.OpPriceHistory, cloud.OpSubmit, cloud.OpCancel, cloud.OpTerminate} {
		err := in.APIFault(op, 0)
		if err == nil {
			t.Fatalf("%s: no fault during region outage", op)
		}
		if !retry.IsTransient(err) {
			t.Fatalf("%s: region-outage fault not transient: %v", op, err)
		}
	}
	for _, typ := range []instances.Type{instances.R3XLarge, instances.C34XL} {
		if !in.LaunchBlocked(typ, 0) {
			t.Errorf("%s: launch not blocked during region outage", typ)
		}
	}
}

// TestRegionOutageDrawsOncePerSlot: episode starts are drawn once per
// slot no matter which hook asks first or how often, so the schedule
// doesn't depend on API call multiplicity.
func TestRegionOutageDrawsOncePerSlot(t *testing.T) {
	run := func(callsPerSlot int) int {
		in := mustNew(t, Config{Seed: 5, RegionOutageRate: 0.3, RegionOutageSlots: 2})
		for slot := 0; slot < 200; slot++ {
			for c := 0; c < callsPerSlot; c++ {
				in.APIFault(cloud.OpSubmit, slot)
				in.LaunchBlocked(instances.R3XLarge, slot)
			}
		}
		return in.Stats().RegionOutages
	}
	once, many := run(1), run(7)
	if once == 0 {
		t.Fatal("rate 0.3 started no region outages in 200 slots")
	}
	if once != many {
		t.Errorf("outage starts depend on call multiplicity: %d vs %d", once, many)
	}
}

// TestRegionOutageWindow: with rate 1 and RegionOutageAfter pinning the
// start, the outage covers exactly [after, after+slots) and then a new
// episode begins — the deterministic failure window the fleet's forced
// failover drills use.
func TestRegionOutageWindow(t *testing.T) {
	in := mustNew(t, Config{RegionOutageRate: 1, RegionOutageAfter: 10, RegionOutageSlots: 5})
	for slot := 0; slot < 10; slot++ {
		if err := in.APIFault(cloud.OpSubmit, slot); err != nil {
			t.Fatalf("slot %d before the window faulted: %v", slot, err)
		}
		if in.LaunchBlocked(instances.R3XLarge, slot) {
			t.Fatalf("slot %d before the window blocked", slot)
		}
	}
	for slot := 10; slot < 20; slot++ {
		if err := in.APIFault(cloud.OpSubmit, slot); err == nil {
			t.Fatalf("slot %d inside the rate-1 window did not fault", slot)
		}
	}
	if in.Stats().RegionOutages != 2 {
		t.Errorf("episodes = %d, want 2 back-to-back 5-slot episodes over 10 slots", in.Stats().RegionOutages)
	}
}

// TestRegionOutageZeroRateConsumesNoRNG: an injector with only the
// region-outage knob at zero leaves the RNG stream untouched, so
// adding the field keeps zero-rate runs bit-identical.
func TestRegionOutageZeroRateConsumesNoRNG(t *testing.T) {
	a := mustNew(t, Config{Seed: 9, APIFaultRate: 0.5})
	b := mustNew(t, Config{Seed: 9, APIFaultRate: 0.5, RegionOutageSlots: 7, RegionOutageAfter: 3})
	var faultsA, faultsB int
	for slot := 0; slot < 500; slot++ {
		// b consults the region-outage path first on both hooks; at zero
		// rate it must not advance the stream a never sees.
		if b.LaunchBlocked(instances.R3XLarge, slot) {
			t.Fatalf("zero-rate region outage blocked slot %d", slot)
		}
		if a.APIFault(cloud.OpSubmit, slot) != nil {
			faultsA++
		}
		if b.APIFault(cloud.OpSubmit, slot) != nil {
			faultsB++
		}
	}
	if faultsA != faultsB {
		t.Errorf("zero-rate region outage perturbed the RNG: %d vs %d api faults", faultsA, faultsB)
	}
	if got := b.Stats().RegionOutages; got != 0 {
		t.Errorf("zero-rate injector recorded %d region outages", got)
	}
}
