package chaos

// Explicit fault schedules. The rate-driven Injector samples a fault
// *process*; a Schedule pins a fault *incident list*: exactly these
// faults, at exactly these slots, for exactly these durations. The
// resilience-verification subsystem (internal/invariant) enumerates
// and shrinks schedules, so a ScheduleInjector consumes no randomness
// at all — two runs of the same schedule are bit-identical, and a
// shrunk schedule prints as a copy-pasteable Go literal that replays
// the violation anywhere.

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/cloud"
	"repro/internal/instances"
	"repro/internal/retry"
	"repro/internal/trace"
)

// FaultKind is the vocabulary of schedulable fault episodes. Each kind
// mirrors one of the rate knobs of Config, pinned to a slot window.
type FaultKind int

const (
	// FaultAPI: every region API call (price history, submit, cancel,
	// terminate) fails transiently during the window.
	FaultAPI FaultKind = iota
	// FaultRegionOutage: the correlated incident — every API call
	// fails AND every spot market refuses launches during the window.
	FaultRegionOutage
	// FaultCapacityOutage: spot markets refuse launches during the
	// window (APIs stay up) — capacity gone, control plane fine.
	FaultCapacityOutage
	// FaultStaleHistory: price-history fetches during the window are
	// served with their newest StaleLagSlots slots missing.
	FaultStaleHistory
	// FaultOutbidDelay: out-bid notices arising during the window are
	// deferred by OutbidDelayLag slots — the instance keeps running,
	// and billing, until the notice lands.
	FaultOutbidDelay
	// FaultCheckpointFail: checkpoint writes during the window fail,
	// losing progress since the last durable record.
	FaultCheckpointFail

	numFaultKinds
)

var faultKindNames = [numFaultKinds]string{
	FaultAPI:            "api-fault",
	FaultRegionOutage:   "region-outage",
	FaultCapacityOutage: "capacity-outage",
	FaultStaleHistory:   "stale-history",
	FaultOutbidDelay:    "outbid-delay",
	FaultCheckpointFail: "checkpoint-fail",
}

var faultKindGoNames = [numFaultKinds]string{
	FaultAPI:            "FaultAPI",
	FaultRegionOutage:   "FaultRegionOutage",
	FaultCapacityOutage: "FaultCapacityOutage",
	FaultStaleHistory:   "FaultStaleHistory",
	FaultOutbidDelay:    "FaultOutbidDelay",
	FaultCheckpointFail: "FaultCheckpointFail",
}

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	if k >= 0 && int(k) < len(faultKindNames) {
		return faultKindNames[k]
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// GoName returns the kind's Go identifier, for reproducer literals.
func (k FaultKind) GoName() string {
	if k >= 0 && int(k) < len(faultKindGoNames) {
		return "chaos." + faultKindGoNames[k]
	}
	return fmt.Sprintf("chaos.FaultKind(%d)", int(k))
}

// Scheduled-fault tuning shared by every ScheduleInjector. Fixed
// rather than per-fault so a FaultAt stays the four-field tuple the
// explorer enumerates and shrinks over.
const (
	// StaleLagSlots is how many newest slots a FaultStaleHistory fetch
	// is missing (36 slots = 3 hours, matching Config's default).
	StaleLagSlots = 36
	// OutbidDelayLag is how many slots a FaultOutbidDelay notice is
	// deferred.
	OutbidDelayLag = 2
)

// FaultAt schedules one fault episode: Kind is active for the slot
// window [Slot, Slot+Slots). Target optionally names the fleet member
// the episode is aimed at ("" targets the scenario's home region);
// the injector itself is region-agnostic — whoever arms it on a
// region decides which faults it carries.
type FaultAt struct {
	// Slot is the first slot of the episode.
	Slot int
	// Kind is the fault type.
	Kind FaultKind
	// Target optionally names the targeted fleet member ("" = home).
	Target string
	// Slots is the episode length (default 1).
	Slots int
}

// window reports the defaulted [start, end) slot window.
func (f FaultAt) window() (int, int) {
	n := f.Slots
	if n <= 0 {
		n = 1
	}
	return f.Slot, f.Slot + n
}

// covers reports whether the episode is active at slot.
func (f FaultAt) covers(slot int) bool {
	lo, hi := f.window()
	return slot >= lo && slot < hi
}

// Validate reports whether the fault is well formed.
func (f FaultAt) Validate() error {
	if f.Slot < 0 {
		return &ConfigError{Field: "FaultAt.Slot", Value: float64(f.Slot), Reason: "negative slot"}
	}
	if f.Slots < 0 {
		return &ConfigError{Field: "FaultAt.Slots", Value: float64(f.Slots), Reason: "negative duration"}
	}
	if f.Kind < 0 || f.Kind >= numFaultKinds {
		return &ConfigError{Field: "FaultAt.Kind", Value: float64(f.Kind), Reason: "unknown fault kind"}
	}
	return nil
}

// Schedule is an explicit fault incident list.
type Schedule []FaultAt

// Validate reports whether every fault is well formed.
func (s Schedule) Validate() error {
	for i, f := range s {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("schedule fault %d: %w", i, err)
		}
	}
	return nil
}

// Horizon reports the first slot past every episode (0 for an empty
// schedule) — the minimum trace length that exercises the whole
// schedule.
func (s Schedule) Horizon() int {
	h := 0
	for _, f := range s {
		if _, end := f.window(); end > h {
			h = end
		}
	}
	return h
}

// Clone returns an independent copy.
func (s Schedule) Clone() Schedule {
	if s == nil {
		return nil
	}
	out := make(Schedule, len(s))
	copy(out, s)
	return out
}

// GoString renders the schedule as a copy-pasteable Go literal — the
// form a shrunk minimal reproducer is reported in.
func (s Schedule) GoString() string {
	if len(s) == 0 {
		return "chaos.Schedule{}"
	}
	var b strings.Builder
	b.WriteString("chaos.Schedule{\n")
	for _, f := range s {
		fmt.Fprintf(&b, "\t{Slot: %d, Kind: %s", f.Slot, f.Kind.GoName())
		if f.Target != "" {
			fmt.Fprintf(&b, ", Target: %q", f.Target)
		}
		if f.Slots > 1 {
			fmt.Fprintf(&b, ", Slots: %d", f.Slots)
		}
		b.WriteString("},\n")
	}
	b.WriteString("}")
	return b.String()
}

// ScheduleInjector implements cloud.FaultInjector (plus the checkpoint
// write hook) from an explicit fault list. It draws no randomness:
// the same schedule delivers the same faults on every run, which is
// what lets the invariant explorer shrink a failing schedule to a
// minimal reproducer. Safe for concurrent use like Injector, with the
// same caveat: drive the region from one goroutine.
type ScheduleInjector struct {
	mu     sync.Mutex
	faults Schedule
	// started tracks which episode indexes have been observed active,
	// so Stats counts episodes (not per-call consultations).
	started map[int]bool
	stats   Stats
}

// NewSchedule builds an injector delivering exactly the given faults.
// The schedule is validated (typed *ConfigError) and copied.
func NewSchedule(faults Schedule) (*ScheduleInjector, error) {
	if err := faults.Validate(); err != nil {
		return nil, err
	}
	return &ScheduleInjector{faults: faults.Clone(), started: make(map[int]bool)}, nil
}

// Schedule returns a copy of the injector's fault list.
func (in *ScheduleInjector) Schedule() Schedule {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults.Clone()
}

// Validate implements the optional injector-validation interface
// consulted by cloud.Region.SetInjector.
func (in *ScheduleInjector) Validate() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults.Validate()
}

// Stats returns a snapshot of the faults delivered so far. Episode
// counters (Outages, RegionOutages) count scheduled episodes that were
// actually consulted, not individual blocked calls.
func (in *ScheduleInjector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// activeLocked reports whether any episode of the kind covers slot,
// counting first observations of an episode via count. Callers hold mu.
func (in *ScheduleInjector) activeLocked(kind FaultKind, slot int, count func(*Stats)) bool {
	hit := false
	for i, f := range in.faults {
		if f.Kind != kind || !f.covers(slot) {
			continue
		}
		hit = true
		if count != nil && !in.started[i] {
			in.started[i] = true
			count(&in.stats)
		}
	}
	return hit
}

// APIFault implements cloud.FaultInjector: calls fail transiently
// while a FaultAPI or FaultRegionOutage episode is active.
func (in *ScheduleInjector) APIFault(op cloud.Op, slot int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.activeLocked(FaultRegionOutage, slot, func(s *Stats) { s.RegionOutages++ }) {
		in.stats.APIFaults++
		return transientf("chaos: scheduled region outage fails %s at slot %d", op, slot)
	}
	if in.activeLocked(FaultAPI, slot, nil) {
		in.stats.APIFaults++
		return transientf("chaos: scheduled %s failure at slot %d", op, slot)
	}
	return nil
}

// DegradeHistory implements cloud.FaultInjector: fetches during a
// FaultStaleHistory episode are served with the newest StaleLagSlots
// slots missing. The input trace is never mutated.
func (in *ScheduleInjector) DegradeHistory(tr *trace.Trace, slot int) *trace.Trace {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.activeLocked(FaultStaleHistory, slot, nil) {
		return tr
	}
	if tr.Len() <= StaleLagSlots+1 {
		return tr
	}
	w, err := tr.Window(0, tr.Len()-StaleLagSlots)
	if err != nil {
		return tr
	}
	in.stats.StaleServes++
	return w
}

// LaunchBlocked implements cloud.FaultInjector: spot launches are
// refused while a FaultCapacityOutage or FaultRegionOutage episode is
// active (for every instance type — scheduled outages model the
// market, not one product).
func (in *ScheduleInjector) LaunchBlocked(t instances.Type, slot int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	blocked := in.activeLocked(FaultRegionOutage, slot, func(s *Stats) { s.RegionOutages++ })
	if in.activeLocked(FaultCapacityOutage, slot, func(s *Stats) { s.Outages++ }) {
		blocked = true
	}
	return blocked
}

// OutbidDelay implements cloud.FaultInjector: notices arising during a
// FaultOutbidDelay episode land OutbidDelayLag slots late.
func (in *ScheduleInjector) OutbidDelay(slot int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.activeLocked(FaultOutbidDelay, slot, nil) {
		return 0
	}
	in.stats.DelayedOutbids++
	return OutbidDelayLag
}

// CheckpointFault is the checkpoint.Volume write hook: writes during a
// FaultCheckpointFail episode fail with checkpoint.ErrWriteFailed.
func (in *ScheduleInjector) CheckpointFault(jobID string, slot int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.activeLocked(FaultCheckpointFail, slot, nil) {
		return nil
	}
	in.stats.CheckpointFailures++
	return retry.Transient(fmt.Errorf("%w: chaos: scheduled write failure for %s at slot %d",
		checkpoint.ErrWriteFailed, jobID, slot))
}

// Arm installs the injector on a region and, when vol is non-nil, its
// checkpoint volume — the ScheduleInjector counterpart of
// Injector.Arm.
func (in *ScheduleInjector) Arm(r *cloud.Region, vol *checkpoint.Volume) error {
	if err := r.SetInjector(in); err != nil {
		return err
	}
	if vol != nil {
		vol.SetWriteFault(in.CheckpointFault)
	}
	return nil
}
