package chaos

import (
	"bytes"
	"math/rand"
)

// CSVCorruption is one way a spot-price history file arrives broken:
// truncated downloads, dropped or duplicated rows, garbled fields, and
// flipped bytes. The same failure modes the Injector applies to live
// telemetry (DegradeHistory), expressed at the serialization layer —
// the trace package's fuzz tests feed this corpus to ReadCSV.
type CSVCorruption struct {
	// Name labels the corruption for seeds and test output.
	Name string
	// Apply returns a corrupted copy of the input; the input is never
	// mutated.
	Apply func(rng *rand.Rand, data []byte) []byte
}

// CSVCorruptions is the corruption corpus.
var CSVCorruptions = []CSVCorruption{
	{"truncate-tail", func(rng *rand.Rand, data []byte) []byte {
		if len(data) == 0 {
			return nil
		}
		return clone(data[:rng.Intn(len(data))])
	}},
	{"drop-row", func(rng *rand.Rand, data []byte) []byte {
		rows := splitRows(data)
		if len(rows) < 2 {
			return clone(data)
		}
		i := rng.Intn(len(rows))
		return joinRows(append(rows[:i:i], rows[i+1:]...))
	}},
	{"duplicate-row", func(rng *rand.Rand, data []byte) []byte {
		rows := splitRows(data)
		if len(rows) == 0 {
			return clone(data)
		}
		i := rng.Intn(len(rows))
		out := make([][]byte, 0, len(rows)+1)
		out = append(out, rows[:i+1]...)
		out = append(out, rows[i])
		out = append(out, rows[i+1:]...)
		return joinRows(out)
	}},
	{"swap-rows", func(rng *rand.Rand, data []byte) []byte {
		rows := splitRows(data)
		if len(rows) < 3 {
			return clone(data)
		}
		i := 1 + rng.Intn(len(rows)-2) // keep the header in place
		rows = append([][]byte(nil), rows...)
		rows[i], rows[i+1] = rows[i+1], rows[i]
		return joinRows(rows)
	}},
	{"garble-price", func(rng *rand.Rand, data []byte) []byte {
		return garbleLastField(rng, data, []string{"NaN", "-Inf", "1e309", "0.0.3", "", "  0.03", "0x1p-3"})
	}},
	{"garble-timestamp", func(rng *rand.Rand, data []byte) []byte {
		rows := splitRows(data)
		if len(rows) < 2 {
			return clone(data)
		}
		i := 1 + rng.Intn(len(rows)-1)
		fields := bytes.Split(rows[i], []byte(","))
		broken := []string{"2014-13-99T99:99:99Z", "not-a-time", "2014-08-14 00:00:00", ""}
		fields[0] = []byte(broken[rng.Intn(len(broken))])
		rows = append([][]byte(nil), rows...)
		rows[i] = bytes.Join(fields, []byte(","))
		return joinRows(rows)
	}},
	{"bit-flip", func(rng *rand.Rand, data []byte) []byte {
		if len(data) == 0 {
			return nil
		}
		out := clone(data)
		for n := 1 + rng.Intn(3); n > 0; n-- {
			out[rng.Intn(len(out))] ^= 1 << uint(rng.Intn(8))
		}
		return out
	}},
}

// garbleLastField replaces the final (price) field of a random data
// row with one of the given broken values.
func garbleLastField(rng *rand.Rand, data []byte, broken []string) []byte {
	rows := splitRows(data)
	if len(rows) < 2 {
		return clone(data)
	}
	i := 1 + rng.Intn(len(rows)-1)
	fields := bytes.Split(rows[i], []byte(","))
	fields[len(fields)-1] = []byte(broken[rng.Intn(len(broken))])
	rows = append([][]byte(nil), rows...)
	rows[i] = bytes.Join(fields, []byte(","))
	return joinRows(rows)
}

func splitRows(data []byte) [][]byte {
	rows := bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n"))
	if len(rows) == 1 && len(rows[0]) == 0 {
		return nil
	}
	return rows
}

func joinRows(rows [][]byte) []byte {
	if len(rows) == 0 {
		return nil
	}
	return append(bytes.Join(rows, []byte("\n")), '\n')
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }
