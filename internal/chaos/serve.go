package chaos

// Serving-layer fault schedules. The control plane (internal/serve)
// defines a Faults interface — feed stalls, build failures, swap
// latency spikes, client clock skew, price spikes — and ServeInjector
// implements it structurally from an explicit incident list, the same
// RNG-free idiom as ScheduleInjector: the same schedule delivers the
// same faults on every run, and a schedule prints as a
// copy-pasteable Go literal. chaos does not import serve (serve is a
// consumer of chaos's vocabulary, not the other way around).

import (
	"fmt"
	"strings"
	"sync"
)

// ServeFaultKind is the vocabulary of schedulable serving faults.
type ServeFaultKind int

const (
	// ServeFeedStall: the spot-price feed delivers nothing during the
	// window; table data ages and the staleness ladder degrades.
	ServeFeedStall ServeFaultKind = iota
	// ServeBuildFail: quote-table builds attempted during the window
	// fail; the watchdog counts consecutive failures.
	ServeBuildFail
	// ServeBuildDelay: builds started during the window finish but
	// their swap lands ServeBuildDelayLag slots late.
	ServeBuildDelay
	// ServeClockSkew: request deadlines issued during the window are
	// skewed by ServeClockSkewMicros (positive skew shortens the
	// effective budget — the client's clock runs behind the server's).
	ServeClockSkew
	// ServePriceSpike: fed prices during the window are multiplied by
	// ServePriceSpikeFactor, pushing mass above the on-demand ceiling
	// so Eq. 14 infeasibility actually occurs.
	ServePriceSpike

	numServeFaultKinds
)

var serveFaultKindNames = [numServeFaultKinds]string{
	ServeFeedStall:  "feed-stall",
	ServeBuildFail:  "build-fail",
	ServeBuildDelay: "build-delay",
	ServeClockSkew:  "clock-skew",
	ServePriceSpike: "price-spike",
}

var serveFaultKindGoNames = [numServeFaultKinds]string{
	ServeFeedStall:  "ServeFeedStall",
	ServeBuildFail:  "ServeBuildFail",
	ServeBuildDelay: "ServeBuildDelay",
	ServeClockSkew:  "ServeClockSkew",
	ServePriceSpike: "ServePriceSpike",
}

// String implements fmt.Stringer.
func (k ServeFaultKind) String() string {
	if k >= 0 && int(k) < len(serveFaultKindNames) {
		return serveFaultKindNames[k]
	}
	return fmt.Sprintf("ServeFaultKind(%d)", int(k))
}

// GoName returns the kind's Go identifier, for reproducer literals.
func (k ServeFaultKind) GoName() string {
	if k >= 0 && int(k) < len(serveFaultKindGoNames) {
		return "chaos." + serveFaultKindGoNames[k]
	}
	return fmt.Sprintf("chaos.ServeFaultKind(%d)", int(k))
}

// Scheduled serving-fault tuning, fixed so a ServeFaultAt stays the
// three-field tuple an explorer can enumerate and shrink over.
const (
	// ServeBuildDelayLag is how many slots a ServeBuildDelay swap
	// lands late.
	ServeBuildDelayLag = 8
	// ServeClockSkewMicros is the deadline skew a ServeClockSkew
	// episode applies (2 s — larger than any sane request budget).
	ServeClockSkewMicros = int64(2_000_000)
	// ServePriceSpikeFactor multiplies fed prices during a
	// ServePriceSpike episode (×20 lifts typical spot prices above
	// every on-demand ceiling in the catalog).
	ServePriceSpikeFactor = 20.0
)

// ServeFaultAt schedules one serving-fault episode active over the
// slot window [Slot, Slot+Slots).
type ServeFaultAt struct {
	// Slot is the first slot of the episode.
	Slot int
	// Kind is the fault type.
	Kind ServeFaultKind
	// Slots is the episode length (default 1).
	Slots int
}

// window reports the defaulted [start, end) slot window.
func (f ServeFaultAt) window() (int, int) {
	n := f.Slots
	if n <= 0 {
		n = 1
	}
	return f.Slot, f.Slot + n
}

// covers reports whether the episode is active at slot.
func (f ServeFaultAt) covers(slot int) bool {
	lo, hi := f.window()
	return slot >= lo && slot < hi
}

// Validate reports whether the fault is well formed.
func (f ServeFaultAt) Validate() error {
	if f.Slot < 0 {
		return &ConfigError{Field: "ServeFaultAt.Slot", Value: float64(f.Slot), Reason: "negative slot"}
	}
	if f.Slots < 0 {
		return &ConfigError{Field: "ServeFaultAt.Slots", Value: float64(f.Slots), Reason: "negative duration"}
	}
	if f.Kind < 0 || f.Kind >= numServeFaultKinds {
		return &ConfigError{Field: "ServeFaultAt.Kind", Value: float64(f.Kind), Reason: "unknown fault kind"}
	}
	return nil
}

// ServeSchedule is an explicit serving-fault incident list.
type ServeSchedule []ServeFaultAt

// Validate reports whether every fault is well formed.
func (s ServeSchedule) Validate() error {
	for i, f := range s {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("serve schedule fault %d: %w", i, err)
		}
	}
	return nil
}

// Horizon reports the first slot past every episode (0 when empty).
func (s ServeSchedule) Horizon() int {
	h := 0
	for _, f := range s {
		if _, end := f.window(); end > h {
			h = end
		}
	}
	return h
}

// Clone returns an independent copy.
func (s ServeSchedule) Clone() ServeSchedule {
	if s == nil {
		return nil
	}
	out := make(ServeSchedule, len(s))
	copy(out, s)
	return out
}

// GoString renders the schedule as a copy-pasteable Go literal.
func (s ServeSchedule) GoString() string {
	if len(s) == 0 {
		return "chaos.ServeSchedule{}"
	}
	var b strings.Builder
	b.WriteString("chaos.ServeSchedule{\n")
	for _, f := range s {
		fmt.Fprintf(&b, "\t{Slot: %d, Kind: %s", f.Slot, f.Kind.GoName())
		if f.Slots > 1 {
			fmt.Fprintf(&b, ", Slots: %d", f.Slots)
		}
		b.WriteString("},\n")
	}
	b.WriteString("}")
	return b.String()
}

// ServeStats counts delivered serving faults, by kind of consultation
// that hit an active episode.
type ServeStats struct {
	StalledSlots  int
	FailedBuilds  int
	DelayedBuilds int
	SkewedSlots   int
	SpikedSlots   int
}

// ServeInjector implements serve.Faults (structurally — chaos does
// not import serve) from an explicit ServeSchedule. It draws no
// randomness and is safe for concurrent use: the quote path consults
// DeadlineSkewMicros while the feed and builder consult the rest.
type ServeInjector struct {
	mu     sync.Mutex
	faults ServeSchedule
	stats  ServeStats
}

// NewServeSchedule builds an injector delivering exactly the given
// faults. The schedule is validated (typed *ConfigError) and copied.
func NewServeSchedule(faults ServeSchedule) (*ServeInjector, error) {
	if err := faults.Validate(); err != nil {
		return nil, err
	}
	return &ServeInjector{faults: faults.Clone()}, nil
}

// Schedule returns a copy of the injector's fault list.
func (in *ServeInjector) Schedule() ServeSchedule {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults.Clone()
}

// Stats returns a snapshot of the faults delivered so far.
func (in *ServeInjector) Stats() ServeStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// active reports whether any episode of the kind covers slot,
// bumping the given counter on a hit.
func (in *ServeInjector) active(kind ServeFaultKind, slot int, count *int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, f := range in.faults {
		if f.Kind == kind && f.covers(slot) {
			if count != nil {
				*count++
			}
			return true
		}
	}
	return false
}

// FeedStalled implements serve.Faults.
func (in *ServeInjector) FeedStalled(slot int) bool {
	return in.active(ServeFeedStall, slot, &in.stats.StalledSlots)
}

// BuildFails implements serve.Faults.
func (in *ServeInjector) BuildFails(slot int) bool {
	return in.active(ServeBuildFail, slot, &in.stats.FailedBuilds)
}

// BuildDelaySlots implements serve.Faults.
func (in *ServeInjector) BuildDelaySlots(slot int) int {
	if in.active(ServeBuildDelay, slot, &in.stats.DelayedBuilds) {
		return ServeBuildDelayLag
	}
	return 0
}

// DeadlineSkewMicros implements serve.Faults.
func (in *ServeInjector) DeadlineSkewMicros(slot int) int64 {
	if in.active(ServeClockSkew, slot, &in.stats.SkewedSlots) {
		return ServeClockSkewMicros
	}
	return 0
}

// SpikeFactor implements serve.Faults.
func (in *ServeInjector) SpikeFactor(slot int) float64 {
	if in.active(ServePriceSpike, slot, &in.stats.SpikedSlots) {
		return ServePriceSpikeFactor
	}
	return 1
}
