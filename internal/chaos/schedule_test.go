package chaos

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/cloud"
	"repro/internal/instances"
	"repro/internal/retry"
)

// TestConfigValidateTyped: every rate outside [0,1] and every
// negative duration is rejected with a typed *ConfigError naming the
// field — from New, Uniform configs, and the SetInjector path alike.
func TestConfigValidateTyped(t *testing.T) {
	invalid := []struct {
		cfg   Config
		field string
	}{
		{Config{APIFaultRate: -0.1}, "APIFaultRate"},
		{Config{APIFaultRate: 1.1}, "APIFaultRate"},
		{Config{DropRate: 2}, "DropRate"},
		{Config{DupRate: -1}, "DupRate"},
		{Config{CorruptRate: 1.5}, "CorruptRate"},
		{Config{StaleProb: -0.5}, "StaleProb"},
		{Config{OutageRate: 7}, "OutageRate"},
		{Config{RegionOutageRate: -2}, "RegionOutageRate"},
		{Config{OutbidDelayProb: 1.01}, "OutbidDelayProb"},
		{Config{CheckpointFailRate: -0.01}, "CheckpointFailRate"},
		{Config{APIBurst: -1}, "APIBurst"},
		{Config{StaleSlots: -1}, "StaleSlots"},
		{Config{OutageSlots: -5}, "OutageSlots"},
		{Config{RegionOutageSlots: -1}, "RegionOutageSlots"},
		{Config{RegionOutageAfter: -3}, "RegionOutageAfter"},
		{Config{OutbidDelaySlots: -2}, "OutbidDelaySlots"},
	}
	for _, tc := range invalid {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("config %+v accepted, want %s rejection", tc.cfg, tc.field)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("config %+v: error %T, want *ConfigError", tc.cfg, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("config %+v rejected on %s, want %s", tc.cfg, ce.Field, tc.field)
		}
		if _, nerr := New(tc.cfg); nerr == nil {
			t.Errorf("New accepted invalid config %+v", tc.cfg)
		}
	}
	// Boundary values are fine.
	for _, cfg := range []Config{{}, Uniform(0, 1), Uniform(1, 1), {APIFaultRate: 1, OutageRate: 0}} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("valid config %+v rejected: %v", cfg, err)
		}
	}
}

// TestSetInjectorRejectsInvalid: a region refuses to arm an injector
// whose configuration fails validation.
func TestSetInjectorRejectsInvalid(t *testing.T) {
	r := flatRegion(t, []float64{0.03, 0.03})
	bad := &Injector{cfg: Config{APIFaultRate: 2}}
	err := r.SetInjector(bad)
	if err == nil {
		t.Fatal("region armed an invalid injector")
	}
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Field != "APIFaultRate" {
		t.Errorf("rejection error %v, want wrapped *ConfigError on APIFaultRate", err)
	}
	if r.Injector() != nil {
		t.Error("invalid injector left installed")
	}
}

// TestScheduleValidateTyped: malformed fault entries are rejected
// with positioned, typed errors.
func TestScheduleValidateTyped(t *testing.T) {
	cases := []struct {
		s     Schedule
		field string
	}{
		{Schedule{{Slot: -1, Kind: FaultAPI}}, "FaultAt.Slot"},
		{Schedule{{Slot: 0, Kind: FaultAPI, Slots: -2}}, "FaultAt.Slots"},
		{Schedule{{Slot: 0, Kind: FaultKind(99)}}, "FaultAt.Kind"},
		{Schedule{{Slot: 0, Kind: FaultKind(-1)}}, "FaultAt.Kind"},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		var ce *ConfigError
		if err == nil || !errors.As(err, &ce) || ce.Field != tc.field {
			t.Errorf("schedule %v: error %v, want *ConfigError on %s", tc.s, err, tc.field)
		}
		if _, nerr := NewSchedule(tc.s); nerr == nil {
			t.Errorf("NewSchedule accepted %v", tc.s)
		}
	}
	if err := (Schedule{{Slot: 0, Kind: FaultAPI}, {Slot: 5, Kind: FaultCheckpointFail, Slots: 3}}).Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func mustNewSchedule(t *testing.T, s Schedule) *ScheduleInjector {
	t.Helper()
	in, err := NewSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestScheduleWindows: each hook fires exactly inside its episode's
// [Slot, Slot+Slots) window and never outside it.
func TestScheduleWindows(t *testing.T) {
	in := mustNewSchedule(t, Schedule{
		{Slot: 10, Kind: FaultAPI, Slots: 3},
		{Slot: 20, Kind: FaultCapacityOutage}, // Slots 0 defaults to 1
		{Slot: 30, Kind: FaultOutbidDelay, Slots: 2},
		{Slot: 40, Kind: FaultCheckpointFail, Slots: 2},
	})
	for slot := 0; slot < 50; slot++ {
		apiErr := in.APIFault(cloud.OpSubmit, slot)
		if want := slot >= 10 && slot < 13; (apiErr != nil) != want {
			t.Errorf("slot %d: APIFault err=%v, want active=%v", slot, apiErr, want)
		}
		if apiErr != nil && !retry.IsTransient(apiErr) {
			t.Errorf("slot %d: API fault not transient", slot)
		}
		if got, want := in.LaunchBlocked(instances.R3XLarge, slot), slot == 20; got != want {
			t.Errorf("slot %d: LaunchBlocked=%v, want %v", slot, got, want)
		}
		delay := in.OutbidDelay(slot)
		if want := slot >= 30 && slot < 32; (delay == OutbidDelayLag) != want || (delay != 0 && delay != OutbidDelayLag) {
			t.Errorf("slot %d: OutbidDelay=%d", slot, delay)
		}
		ckErr := in.CheckpointFault("j", slot)
		if want := slot >= 40 && slot < 42; (ckErr != nil) != want {
			t.Errorf("slot %d: CheckpointFault err=%v, want active=%v", slot, ckErr, want)
		}
		if ckErr != nil && !errors.Is(ckErr, checkpoint.ErrWriteFailed) {
			t.Errorf("slot %d: checkpoint fault lost ErrWriteFailed: %v", slot, ckErr)
		}
	}
}

// TestScheduleRegionOutageCorrelated: a region-outage episode fails
// APIs and blocks launches at once, and the episode is counted once.
func TestScheduleRegionOutageCorrelated(t *testing.T) {
	in := mustNewSchedule(t, Schedule{{Slot: 5, Kind: FaultRegionOutage, Slots: 4}})
	for slot := 5; slot < 9; slot++ {
		if in.APIFault(cloud.OpCancel, slot) == nil {
			t.Errorf("slot %d: API up during region outage", slot)
		}
		if !in.LaunchBlocked(instances.R3XLarge, slot) {
			t.Errorf("slot %d: launches allowed during region outage", slot)
		}
	}
	st := in.Stats()
	if st.RegionOutages != 1 {
		t.Errorf("RegionOutages = %d, want 1 episode", st.RegionOutages)
	}
	if st.APIFaults != 4 {
		t.Errorf("APIFaults = %d, want 4 failed calls", st.APIFaults)
	}
}

// TestScheduleDeterministicNoRNG: two injectors with the same
// schedule deliver identical faults and identical stats — there is no
// randomness to diverge.
func TestScheduleDeterministicNoRNG(t *testing.T) {
	s := Schedule{
		{Slot: 3, Kind: FaultAPI, Slots: 2},
		{Slot: 7, Kind: FaultStaleHistory, Slots: 5},
	}
	a, b := mustNewSchedule(t, s), mustNewSchedule(t, s)
	for slot := 0; slot < 15; slot++ {
		ea, eb := a.APIFault(cloud.OpPriceHistory, slot), b.APIFault(cloud.OpPriceHistory, slot)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("slot %d: injectors diverged", slot)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestScheduleGoStringRoundTrip: the reproducer literal carries every
// non-default field and round-trips through Clone/equality.
func TestScheduleGoStringRoundTrip(t *testing.T) {
	s := Schedule{
		{Slot: 576, Kind: FaultRegionOutage, Slots: 24},
		{Slot: 580, Kind: FaultAPI, Target: "region-1"},
	}
	g := s.GoString()
	for _, want := range []string{"chaos.Schedule{", "chaos.FaultRegionOutage", "Slots: 24",
		`Target: "region-1"`, "Slot: 576", "Slot: 580"} {
		if !strings.Contains(g, want) {
			t.Errorf("GoString missing %q:\n%s", want, g)
		}
	}
	if strings.Contains(g, "Slots: 1") || strings.Contains(g, "Slots: 0") {
		t.Errorf("GoString renders defaulted durations:\n%s", g)
	}
	c := s.Clone()
	c[0].Slot = 1
	if s[0].Slot != 576 {
		t.Error("Clone aliases the original")
	}
	if (Schedule{}).GoString() != "chaos.Schedule{}" {
		t.Errorf("empty schedule literal: %q", (Schedule{}).GoString())
	}
	if got := s.Horizon(); got != 600 {
		t.Errorf("Horizon = %d, want 600", got)
	}
}
