package spotbid_test

import (
	"fmt"
	"log"

	spotbid "repro"
)

// Example_quickstart mirrors the README: estimate the market from a
// two-month history and compute the paper's optimal bids.
func Example_quickstart() {
	history, err := spotbid.GenerateTrace(spotbid.R3XLarge, spotbid.GenOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	ecdf, err := history.ECDF(0)
	if err != nil {
		log.Fatal(err)
	}
	m := spotbid.Market{Price: ecdf, OnDemand: 0.35}

	oneTime, err := m.OneTimeBid(spotbid.Job{Exec: 1})
	if err != nil {
		log.Fatal(err)
	}
	persistent, err := m.PersistentBid(spotbid.Job{Exec: 1, Recovery: spotbid.Seconds(30)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-time   bid $%.4f (savings %.0f%%)\n", oneTime.Price, 100*oneTime.Savings())
	fmt.Printf("persistent bid $%.4f (savings %.0f%%)\n", persistent.Price, 100*persistent.Savings())
	// Output:
	// one-time   bid $0.0343 (savings 91%)
	// persistent bid $0.0335 (savings 91%)
}

// ExampleProvider_OptimalPrice shows the provider-side Eq. 3 price as
// demand grows.
func ExampleProvider_OptimalPrice() {
	cal, err := spotbid.CalibrationFor(spotbid.R3XLarge)
	if err != nil {
		log.Fatal(err)
	}
	p := cal.Provider
	for _, load := range []float64{1, 5, 25} {
		fmt.Printf("L=%-3.0f π*=$%.4f\n", load, p.OptimalPrice(load))
	}
	// Output:
	// L=1   π*=$0.0300
	// L=5   π*=$0.1009
	// L=25  π*=$0.1529
}

// ExamplePlanMapReduce plans a word-count cluster with Eq. 20.
func ExamplePlanMapReduce() {
	history, err := spotbid.GenerateTrace(spotbid.C34XL, spotbid.GenOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	ecdf, err := history.ECDF(0)
	if err != nil {
		log.Fatal(err)
	}
	m := spotbid.Market{Price: ecdf, OnDemand: 0.84}
	plan, err := spotbid.PlanMapReduce(m, m, spotbid.MapReduceJob{
		Exec:     2,
		Recovery: spotbid.Seconds(30),
		Overhead: spotbid.Seconds(60),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workers=%d savings=%.0f%%\n", plan.Workers, 100*plan.Savings())
	// Output:
	// workers=2 savings=91%
}
