#!/bin/sh
# Perf regression gate: re-measure the core benchmark pairs quickly and
# compare their optimized/baseline ratios against the committed
# BENCH_core.json record. The ratios are dimensionless, so a record
# measured on one machine constrains runs on any other; a pair whose
# ratio worsens by more than the corebench default tolerance (10%) —
# or a market.slot_ecdf / lanes.fleet speedup below the 2x acceptance
# bar — fails the build. The client.market alloc ceilings ride on the
# same run: the live quote window serves the per-slot market fetch in
# ≤ 8 allocs and ≤ 4 KiB per op (measured: 2 allocs, ~260 B — the tick
# and history-view bookkeeping), where the legacy snapshot path burned
# ~300 KB. Refresh the record with `make bench-core` after an
# intentional performance change.
#
# The serving gate rides along: cmd/servebench re-measures the quote
# hot path and fails if any serve.quote_* branch allocates (the
# committed BENCH_serve.json is the 0-alloc contract). Refresh it with
# `make bench-serve`.
set -e
cd "$(dirname "$0")/.."
if [ ! -f BENCH_core.json ]; then
    echo "perfgate: BENCH_core.json missing; run 'make bench-core' and commit it" >&2
    exit 1
fi
if [ ! -f BENCH_serve.json ]; then
    echo "perfgate: BENCH_serve.json missing; run 'make bench-serve' and commit it" >&2
    exit 1
fi
"${GO:-go}" run ./cmd/corebench -quick -gate BENCH_core.json -max-market-allocs 8 -max-market-bytes 4096
exec "${GO:-go}" run ./cmd/servebench -quick -gate BENCH_serve.json
