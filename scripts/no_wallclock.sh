#!/bin/sh
# no_wallclock.sh — deterministic-core lint.
#
# The trace layer's determinism contract (DESIGN.md §9) is that one
# seed yields one byte sequence per export format, which is only true
# if no wall-clock reading ever reaches an event, a span, or anything
# they are derived from. This gate fails the build if time.Now or
# time.Since appears in the slot-indexed core. A line that has a
# legitimate need (none today) can carry a `nowallclock:allow` comment
# with a justification.
set -eu

cd "$(dirname "$0")/.."

dirs="internal/obs internal/cloud internal/client internal/fleet internal/serve"

hits=$(grep -rn --include='*.go' 'time\.\(Now\|Since\)(' $dirs 2>/dev/null |
	grep -v 'nowallclock:allow' || true)

if [ -n "$hits" ]; then
	echo "no-wallclock: wall-clock reads in the deterministic core:" >&2
	echo "$hits" >&2
	echo "no-wallclock: use slot indices; see DESIGN.md §9 (or justify with a nowallclock:allow comment)" >&2
	exit 1
fi
echo "no-wallclock: clean"
