# Standard checks. `make check` is the pre-merge gate: vet + the full
# test suite under the race detector (the chaos loop and the parallel
# experiment harness must stay race-clean).

GO ?= go

.PHONY: all build test vet race check fuzz bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet race

# Short fuzz pass over both history-parser targets.
fuzz:
	$(GO) test -fuzz=FuzzReadCSV$$ -fuzztime=30s ./internal/trace/
	$(GO) test -fuzz=FuzzReadCSVCorrupted -fuzztime=30s ./internal/trace/

bench:
	$(GO) test -bench=. -benchmem .
