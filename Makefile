# Standard checks. `make check` is the pre-merge gate: vet + the full
# test suite under the race detector (the chaos loop and the parallel
# experiment harness must stay race-clean) + a shuffled-order pass
# (no test may lean on package-level state left by an earlier test).

GO ?= go

.PHONY: all build test vet race race-obs shuffle no-wallclock check fuzz bench bench-json bench-core bench-lanes bench-serve perfgate resilcheck trace-demo serve-demo top-demo

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Focused race pass over the observability layer and every package it
# instruments — fast feedback on the shared-registry paths before the
# full suite runs.
race-obs:
	$(GO) test -race ./internal/obs/ ./internal/obs/event/ ./internal/retry/ \
		./internal/checkpoint/ ./internal/cloud/ ./internal/client/ \
		./internal/market/ ./internal/fleet/ ./internal/trace/ \
		./internal/dist/ ./internal/experiments/ ./internal/chaos/ \
		./internal/invariant/ ./internal/strategy/ ./internal/serve/ \
		./internal/obs/tsdb/

# Randomized test order, seed printed on failure for replay with
# -shuffle=N.
shuffle:
	$(GO) test -shuffle=on ./...

# Trace determinism depends on the slot-indexed core never reading the
# wall clock; see DESIGN.md §9.
no-wallclock:
	sh scripts/no_wallclock.sh

check: vet no-wallclock race-obs race shuffle perfgate resilcheck

# Short fuzz pass over both history-parser targets, the
# fault-schedule shrinker, the strategy deciders, the quote-request
# decoder + serving path, the tsdb chunk decoder, and the branch-free
# order-statistic searches.
fuzz:
	$(GO) test -fuzz=FuzzSearchEquivalence -fuzztime=30s ./internal/dist/
	$(GO) test -fuzz=FuzzReadCSV$$ -fuzztime=30s ./internal/trace/
	$(GO) test -fuzz=FuzzReadCSVCorrupted -fuzztime=30s ./internal/trace/
	$(GO) test -fuzz=FuzzFaultSchedule -fuzztime=30s ./internal/invariant/
	$(GO) test -fuzz=FuzzStrategyDecision -fuzztime=30s ./internal/strategy/
	$(GO) test -fuzz=FuzzQuoteRequest -fuzztime=30s ./internal/serve/
	$(GO) test -fuzz=FuzzTSDBDecode -fuzztime=30s ./internal/obs/tsdb/

# Resilience smoke campaign (deterministic seed): the full default
# fault-schedule grid plus random schedules under all five invariant
# checkers, replay on; exits non-zero on any violation. Part of
# `make check`.
resilcheck:
	$(GO) run ./cmd/resilcheck

bench:
	$(GO) test -bench=. -benchmem .

# Instrumented-vs-Noop overhead record (JSON): micro hot paths plus
# the end-to-end Table 3 pairs (metrics and tracing), whose overhead
# budget is < 5%. Also refreshes the serving hot-path record.
bench-json:
	$(GO) run ./cmd/obsbench -out BENCH_obs.json
	$(GO) run ./cmd/servebench -out BENCH_serve.json

# Serving hot-path record (JSON): quotes/sec, sampled p99 latency, and
# allocs/op per quote branch. The committed BENCH_serve.json is the
# 0-alloc contract scripts/perfgate.sh enforces.
bench-serve:
	$(GO) run ./cmd/servebench -out BENCH_serve.json

# Hot-path before/after record (JSON): the incremental windowed ECDF
# vs the legacy per-slot rebuild, and the trace memo vs regeneration,
# plus current ns/op + allocs/op for the core operations. Commit the
# refreshed BENCH_core.json after an intentional perf change.
bench-core:
	$(GO) run ./cmd/corebench -out BENCH_core.json

# Struct-of-arrays fleet engine benchmarks (in-package: SoA run vs the
# array-of-structs reference twin, allocs reported). The committed
# fleet-scale numbers live in BENCH_core.json (lanes.fleet_tick and
# the lanes.fleet pair) and are enforced by `make check` through
# perfgate's ratio + min-speedup gates.
bench-lanes:
	$(GO) test -bench 'BenchmarkFleet' -benchmem ./internal/lanes/

# Ratio-based perf regression gate against the committed
# BENCH_core.json plus the 0-alloc serving gate against
# BENCH_serve.json; part of `make check`.
perfgate:
	sh scripts/perfgate.sh

# Chaos-failover flight-recorder walkthrough: per-slot timeline on
# stdout; see examples/flightrecorder for the Perfetto export flags.
trace-demo:
	$(GO) run ./examples/flightrecorder

# Bid-advisory daemon demo: one slot per second (300x compression),
# quotes on http://localhost:8372/v1/quote; ^C drains gracefully. See
# the README serving quickstart for curl examples.
serve-demo:
	$(GO) run ./cmd/spotbidd -addr :8372 -accel 300

# Terminal observatory demo: run the serving drill under the tsdb
# scraper and render every series as a sparkline plus the SLO alert
# timeline (degrade → shed → recover). See the README observatory
# quickstart for the replay and attach modes.
top-demo:
	$(GO) run ./cmd/spotbidtop -drill
