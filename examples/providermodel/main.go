// Providermodel demonstrates the provider side of the paper (§4): how
// the revenue+utilization objective prices each slot (Eq. 1–3), how
// the persistent-bid queue stays stable (Prop. 1, Fig. 2), and how
// the equilibrium map h(Λ) turns the arrival distribution into the
// spot-price distribution the bidders consume (Prop. 2–3).
package main

import (
	"fmt"
	"log"
	"math/rand"

	spotbid "repro"
)

func main() {
	cal, err := spotbid.CalibrationFor(spotbid.R3XLarge)
	if err != nil {
		log.Fatal(err)
	}
	p := cal.Provider
	fmt.Printf("provider (r3.xlarge): π̲=$%.3f π̄=$%.3f β=%.3f θ=%.2f\n\n",
		p.PMin, p.POnDemand, p.Beta, p.Theta)

	// 1. Price setting: the optimal spot price rises with demand and
	// never reaches π̄/2 (the FOC's ceiling).
	fmt.Println("Eq. 3 — optimal spot price by load:")
	for _, load := range []float64{0.5, 1, 2, 5, 20, 100} {
		price := p.OptimalPrice(load)
		fmt.Printf("  L=%6.1f bids  →  π*=$%.4f  (accepts %.1f)\n",
			load, price, p.Accepted(load, price))
	}
	fmt.Printf("  ceiling π̄/2 = $%.4f — never exceeded\n\n", p.POnDemand/2)

	// 2. Queue stability: simulate Fig. 2's dynamics under the
	// calibrated arrival mixture.
	arr, err := cal.ArrivalDist()
	if err != nil {
		log.Fatal(err)
	}
	lambda, sigma := arr.Mean(), arr.Var()
	sim := spotbid.MarketSimulator{Provider: p, Arrivals: iid{arr}, Warmup: 2000}
	res, err := sim.Run(20000, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	var meanL, maxL float64
	for _, l := range res.Loads {
		meanL += l
		if l > maxL {
			maxL = l
		}
	}
	meanL /= float64(len(res.Loads))
	fmt.Println("Prop. 1 — queue stability over 20k slots:")
	fmt.Printf("  mean load %.2f, max %.2f; equilibrium load %.2f; negative-drift threshold %.2f\n\n",
		meanL, maxL, p.EquilibriumLoad(lambda), p.StabilityThreshold(lambda, sigma))

	// 3. The equilibrium price distribution (Prop. 3).
	eq, err := cal.PriceDist()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Prop. 3 — equilibrium spot-price distribution:")
	fmt.Printf("  support [$%.4f, $%.4f), mean $%.4f (%.1f%% of on-demand)\n",
		eq.Support().Lo, eq.Support().Hi, eq.Mean(), 100*eq.Mean()/p.POnDemand)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		fmt.Printf("  quantile %.0f%%: $%.4f\n", q*100, eq.Quantile(q))
	}
}

// iid adapts a distribution to the simulator's arrival-process
// interface.
type iid struct{ d spotbid.Dist }

func (p iid) Next(r *rand.Rand) float64   { return p.d.Sample(r) }
func (p iid) MeanVar() (float64, float64) { return p.d.Mean(), p.d.Var() }
