// Chaos reruns the singleinstance experiment on a hostile substrate:
// the same one-hour job and the same strategies, but the simulated
// region injects transient API errors, degraded price telemetry,
// capacity outages, delayed out-bid notices, and lost checkpoints.
// The client absorbs what it can — retries with capped backoff,
// serves a stale ECDF when the price feed is down, and falls back to
// on-demand when its submission budget runs out — and the report's
// Telemetry column shows what each run survived.
//
// Everything is deterministic: rerunning with the same -seed and
// -rate reproduces the identical faults and the identical bills.
package main

import (
	"flag"
	"fmt"
	"log"

	spotbid "repro"
)

func main() {
	var (
		rate = flag.Float64("rate", 0.05, "uniform fault intensity (0 = fault-free)")
		seed = flag.Int64("seed", 2024, "trace and fault seed")
	)
	flag.Parse()

	const typ = spotbid.R3XLarge
	const historySlots = 61 * 288 // two months of 5-minute slots

	fmt.Printf("fault rate %.2f, seed %d\n\n", *rate, *seed)
	fmt.Println("strategy         bid($/h)  cost($)  compl(h)  intr  telemetry")
	fmt.Println("---------------  --------  -------  --------  ----  ---------")

	row := func(name string, run func(c *spotbid.Client, spec spotbid.JobSpec) (spotbid.Report, error)) {
		// A fresh region and a fresh injector per strategy, same seed:
		// every strategy faces the identical trace and fault schedule.
		tr, err := spotbid.GenerateTrace(typ, spotbid.GenOptions{Days: 63, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		region, err := spotbid.NewRegion(tr)
		if err != nil {
			log.Fatal(err)
		}
		c, err := spotbid.NewClient(region)
		if err != nil {
			log.Fatal(err)
		}
		inj, err := spotbid.NewChaos(spotbid.UniformChaos(*rate, *seed))
		if err != nil {
			log.Fatal(err)
		}
		if err := inj.Arm(region, c.Volume); err != nil {
			log.Fatal(err)
		}
		if err := c.Skip(historySlots); err != nil {
			log.Fatal(err)
		}
		spec := spotbid.JobSpec{ID: "demo", Type: typ, Exec: 1, Recovery: spotbid.Seconds(30)}
		rep, err := run(c, spec)
		if err != nil {
			fmt.Printf("%-15s  %s\n", name, err)
			return
		}
		fmt.Printf("%-15s  %8.4f  %7.4f  %8.2f  %4d  %s\n",
			name, rep.BidPrice, rep.Outcome.Cost, float64(rep.Outcome.Completion),
			rep.Outcome.Interruptions, describe(rep.Telemetry, inj.Stats()))
	}

	row("one-time", func(c *spotbid.Client, s spotbid.JobSpec) (spotbid.Report, error) {
		return c.RunOneTime(s)
	})
	row("persistent-30s", func(c *spotbid.Client, s spotbid.JobSpec) (spotbid.Report, error) {
		return c.RunPersistent(s)
	})
	row("percentile-90", func(c *spotbid.Client, s spotbid.JobSpec) (spotbid.Report, error) {
		return c.RunPercentile(s, 90, spotbid.Persistent)
	})
	row("on-demand", func(c *spotbid.Client, s spotbid.JobSpec) (spotbid.Report, error) {
		return c.RunOnDemand(s)
	})
}

func describe(t spotbid.Telemetry, st spotbid.ChaosStats) string {
	s := fmt.Sprintf("%d faults", st.Total())
	if t.FetchRetries+t.SubmitRetries > 0 {
		s += fmt.Sprintf(", %d retries", t.FetchRetries+t.SubmitRetries)
	}
	if t.RejectedQuotes > 0 {
		s += fmt.Sprintf(", %d bad quotes dropped", t.RejectedQuotes)
	}
	if t.Stale {
		s += fmt.Sprintf(", stale ECDF (%d slots old)", t.ECDFAgeSlots)
	}
	if t.Stalled {
		s += ", stalled"
	}
	if t.FellBackOnDemand {
		s += ", fell back on-demand"
	}
	if !t.Degraded() && st.Total() == 0 {
		s = "clean"
	}
	return s
}
