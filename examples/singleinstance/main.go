// Singleinstance reruns the paper's §7.1 experiment end to end on the
// simulated cloud: a one-hour job on r3.xlarge under four strategies
// — optimal one-time, optimal persistent (t_r = 10s and 30s), the
// 90th-percentile heuristic — against the on-demand baseline, all on
// the *same* price trace, with real billing from the simulator.
package main

import (
	"fmt"
	"log"

	spotbid "repro"
)

func main() {
	const typ = spotbid.R3XLarge
	const historySlots = 61 * 288 // two months of 5-minute slots

	fmt.Println("strategy         bid($/h)  cost($)  completion(h)  idle(h)  interruptions")
	fmt.Println("---------------  --------  -------  -------------  -------  -------------")

	row := func(name string, run func(c *spotbid.Client, spec spotbid.JobSpec) (spotbid.Report, error)) {
		// A fresh region per strategy, same seed: every strategy sees
		// the identical price trace, as in a paired experiment.
		region := newRegion()
		c, err := spotbid.NewClient(region)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Skip(historySlots); err != nil {
			log.Fatal(err)
		}
		spec := spotbid.JobSpec{ID: "demo", Type: typ, Exec: 1, Recovery: spotbid.Seconds(30)}
		rep, err := run(c, spec)
		if err != nil {
			log.Fatal(err)
		}
		status := ""
		if !rep.Outcome.Completed {
			status = "  (did not finish!)"
		}
		fmt.Printf("%-15s  %8.4f  %7.4f  %13.2f  %7.2f  %13d%s\n",
			name, rep.BidPrice, rep.Outcome.Cost,
			float64(rep.Outcome.Completion), float64(rep.Outcome.IdleTime),
			rep.Outcome.Interruptions, status)
	}

	row("one-time", func(c *spotbid.Client, s spotbid.JobSpec) (spotbid.Report, error) {
		return c.RunOneTime(s)
	})
	row("persistent-10s", func(c *spotbid.Client, s spotbid.JobSpec) (spotbid.Report, error) {
		s.Recovery = spotbid.Seconds(10)
		return c.RunPersistent(s)
	})
	row("persistent-30s", func(c *spotbid.Client, s spotbid.JobSpec) (spotbid.Report, error) {
		return c.RunPersistent(s)
	})
	row("percentile-90", func(c *spotbid.Client, s spotbid.JobSpec) (spotbid.Report, error) {
		return c.RunPercentile(s, 90, spotbid.Persistent)
	})
	row("on-demand", func(c *spotbid.Client, s spotbid.JobSpec) (spotbid.Report, error) {
		return c.RunOnDemand(s)
	})
}

func newRegion() *spotbid.Region {
	tr, err := spotbid.GenerateTrace(spotbid.R3XLarge, spotbid.GenOptions{Days: 63, Seed: 2024})
	if err != nil {
		log.Fatal(err)
	}
	region, err := spotbid.NewRegion(tr)
	if err != nil {
		log.Fatal(err)
	}
	return region
}
