// Tournament races every registered bidding strategy — the paper's
// Prop. 4 one-time and Prop. 5 persistent optima, the empirical
// 90th-percentile baseline, the best-offline hindsight oracle, the
// on-demand control, and three contenders (a PID price-tracking
// controller, a spot+on-demand portfolio splitter, and an
// AutoSpotting-style opportunistic replacer) — across a chaos grid of
// fault intensities, and prints the ranked league table.
//
// Every (strategy, rate) cell repeats -runs seeded runs through the
// strategy engine; each cell's seed-0 run is additionally re-run on a
// private flight recorder, audited by the runtime invariant suite
// (billing conservation, job liveness, checkpoint monotonicity,
// breaker legality), and re-run once more to verify byte-identical
// replay. Rerunning with the same -seed reproduces the identical
// table.
package main

import (
	"flag"
	"fmt"
	"log"

	spotbid "repro"
)

func main() {
	var (
		runs = flag.Int("runs", 3, "seeded repetitions per (strategy, rate) cell")
		seed = flag.Int64("seed", 1, "trace, offset, and fault seed")
		grid = flag.Bool("grid", false, "also print the per-rate cell detail")
	)
	flag.Parse()

	res, err := spotbid.Tournament(spotbid.ExperimentOpts{Seed: *seed, Runs: *runs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strategy league, %d runs/cell, seed %d, on-demand bill $%.4f\n\n",
		*runs, *seed, res.OnDemandCost)
	fmt.Println(res.Render())

	if *grid {
		fmt.Println("per-cell detail:")
		for _, row := range res.Rows {
			for _, c := range row.Cells {
				fmt.Printf("  %-14s rate %.2f: %d/%d completed, mean cost $%.4f, "+
					"savings %5.1f%%, %d faults, %d violations\n",
					c.Strategy, c.Rate, c.Completed, c.Runs, c.MeanCost,
					100*c.MeanSavings, c.Faults, len(c.Violations))
			}
		}
	}
}
