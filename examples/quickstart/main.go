// Quickstart: load (here: generate) a two-month spot-price history,
// estimate the spot-price distribution, and compute the paper's
// optimal bids for a one-hour job — the minimal end-to-end use of the
// public API.
package main

import (
	"fmt"
	"log"

	spotbid "repro"
)

func main() {
	// 1. A two-month r3.xlarge price history. A real deployment
	// would download DescribeSpotPriceHistory; the calibrated
	// generator stands in for the retired 2014 spot market.
	history, err := spotbid.GenerateTrace(spotbid.R3XLarge, spotbid.GenOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	spec, err := spotbid.LookupInstance(spotbid.R3XLarge)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("history: %d prices, $%.4f–$%.4f (mean $%.4f, on-demand $%.3f)\n\n",
		history.Len(), history.Min(), history.Max(), history.Mean(), spec.OnDemand)

	// 2. The bidder's view of the market: the empirical price
	// distribution F_π plus the on-demand ceiling π̄.
	ecdf, err := history.ECDF(0)
	if err != nil {
		log.Fatal(err)
	}
	market := spotbid.Market{Price: ecdf, OnDemand: spec.OnDemand}

	// 3. Optimal bids for a one-hour job (t_s = 1h).
	oneTime, err := market.OneTimeBid(spotbid.Job{Exec: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-time request   (Prop. 4): bid $%.4f/h → expected cost $%.4f (%.1f%% below on-demand)\n",
		oneTime.Price, oneTime.ExpectedCost, 100*oneTime.Savings())

	// A persistent request tolerates interruptions that each cost
	// t_r = 30s of recovery; it bids lower and waits out price spikes.
	persistent, err := market.PersistentBid(spotbid.Job{Exec: 1, Recovery: spotbid.Seconds(30)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persistent request (Prop. 5): bid $%.4f/h → expected cost $%.4f, completion %.2fh (≈%.1f interruptions)\n",
		persistent.Price, persistent.ExpectedCost,
		float64(persistent.ExpectedCompletion), persistent.ExpectedInterruptions)
}
