// Flightrecorder demonstrates the deterministic event-tracing layer:
// the chaos failover of examples/failover is replayed with a flight
// recorder attached, and the resulting trace — the job's root span,
// the per-region legs under it, and every PriceSet / BidSubmitted /
// BreakerTransition / Drain / CheckpointExport / Migrate /
// CheckpointImport event in causal order — is rendered as a per-slot
// timeline and optionally exported for Perfetto / chrome://tracing.
//
// Everything is deterministic: rerunning with the same -seed produces
// a byte-identical timeline and byte-identical export files. No
// wall-clock time ever enters the trace.
//
// Usage:
//
//	go run ./examples/flightrecorder
//	go run ./examples/flightrecorder -chrome trace.json   # then load in Perfetto
//	go run ./examples/flightrecorder -jsonl trace.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	spotbid "repro"
)

func main() {
	var (
		regions = flag.Int("regions", 3, "fleet size (regions with independent price traces)")
		seed    = flag.Int64("seed", 7, "trace and fault seed")
		chrome  = flag.String("chrome", "", "also write a Chrome trace-viewer JSON file (load in Perfetto)")
		jsonl   = flag.String("jsonl", "", "also write the trace as JSON Lines")
	)
	flag.Parse()

	const typ = spotbid.R3XLarge
	const historySlots = 61 * 288 // two months of 5-minute slots

	// Unbounded: a demo export wants the whole stream. Production
	// supervisors would use the default bounded flight recorder.
	rec := spotbid.NewRecorder(spotbid.TraceConfig{Unbounded: true})

	members := make([]spotbid.FleetMember, *regions)
	for i := range members {
		tr, err := spotbid.GenerateTrace(typ, spotbid.GenOptions{Days: 63, Seed: *seed + int64(i)*4099})
		if err != nil {
			log.Fatal(err)
		}
		region, err := spotbid.NewRegion(tr)
		if err != nil {
			log.Fatal(err)
		}
		c, err := spotbid.NewClient(region)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			// The home region goes down shortly after the job launches.
			inj, err := spotbid.NewChaos(spotbid.ChaosConfig{
				Seed:              *seed*31 + 1,
				RegionOutageRate:  1,
				RegionOutageAfter: historySlots + 10,
				RegionOutageSlots: 288,
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := inj.Arm(region, c.Volume); err != nil {
				log.Fatal(err)
			}
		}
		members[i] = spotbid.FleetMember{ID: fmt.Sprintf("region-%d", i), Region: region, Client: c}
	}

	ctl, err := spotbid.NewFleet(spotbid.FleetConfig{
		MigrationPenalty: spotbid.Seconds(60),
		Trace:            rec,
	}, members...)
	if err != nil {
		log.Fatal(err)
	}
	if err := ctl.Skip(historySlots); err != nil {
		log.Fatal(err)
	}
	spec := spotbid.JobSpec{ID: "demo", Type: typ, Exec: 1, Recovery: spotbid.Seconds(30)}
	rep, err := ctl.RunPersistent(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fleet of %d regions, forced home outage, seed %d\n", *regions, *seed)
	fmt.Printf("completed=%v migrations=%d escalated=%v fleet bill $%.4f\n\n",
		rep.Outcome.Completed, rep.Migrations, rep.Escalated, rep.FleetCost)

	fmt.Printf("flight recorder: %d events, %d spans (%d overwritten)\n\n",
		rec.Len(), len(rec.Spans()), rec.Dropped())
	fmt.Println("per-slot timeline:")
	if err := rec.WriteTimeline(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			log.Fatal(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s — open https://ui.perfetto.dev and drag the file in;\n", *chrome)
		fmt.Println("the time axis is in slots (1 slot = 1 µs of viewer time).")
	}
	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			log.Fatal(err)
		}
		if err := rec.WriteJSONL(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s (spans in ID order, then events in causal order)\n", *jsonl)
	}
}
