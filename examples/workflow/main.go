// Workflow demonstrates the §8 "task dependence" extension: a
// diamond-shaped DAG of tasks (prepare → two parallel analyses →
// merge) scheduled on spot instances. The scheduler follows the
// paper's prescription exactly — it bids on a task only after the
// tasks it depends on have completed, so waiting tasks accrue neither
// cost nor interruption exposure.
package main

import (
	"fmt"
	"log"
	"sort"

	spotbid "repro"
)

func main() {
	tasks := []spotbid.WorkflowTask{
		{ID: "prepare", Type: spotbid.R3XLarge, Exec: 0.5, Recovery: spotbid.Seconds(30)},
		{ID: "analyze-a", Type: spotbid.R3XLarge, Exec: 1, Recovery: spotbid.Seconds(30), DependsOn: []string{"prepare"}},
		{ID: "analyze-b", Type: spotbid.R3XLarge, Exec: 0.75, Recovery: spotbid.Seconds(30), DependsOn: []string{"prepare"}},
		{ID: "merge", Type: spotbid.R3XLarge, Exec: 0.25, Recovery: spotbid.Seconds(30), DependsOn: []string{"analyze-a", "analyze-b"}},
	}
	w, err := spotbid.NewWorkflow(tasks)
	if err != nil {
		log.Fatal(err)
	}
	cp, err := w.CriticalPathExec()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DAG: 4 tasks, critical path %.2fh (prepare → analyze-a → merge)\n\n", float64(cp))

	// A region with two months of history for the price monitor.
	tr, err := spotbid.GenerateTrace(spotbid.R3XLarge, spotbid.GenOptions{Days: 63, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	region, err := spotbid.NewRegion(tr)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 61*288; i++ {
		if err := region.Tick(); err != nil {
			log.Fatal(err)
		}
	}

	runner := spotbid.WorkflowRunner{Region: region}
	res, err := runner.Run(w)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Completed {
		log.Fatal("workflow did not complete")
	}

	sort.Slice(res.Tasks, func(i, j int) bool { return res.Tasks[i].Task.ID < res.Tasks[j].Task.ID })
	fmt.Println("task       bid($/h)  cost($)  completion(h)  interruptions")
	fmt.Println("---------  --------  -------  -------------  -------------")
	for _, to := range res.Tasks {
		fmt.Printf("%-9s  %8.4f  %7.4f  %13.2f  %13d\n",
			to.Task.ID, to.Bid, to.Outcome.Cost,
			float64(to.Outcome.Completion), to.Outcome.Interruptions)
	}
	odCost := 0.35 * (0.5 + 1 + 0.75 + 0.25)
	fmt.Printf("\nmakespan %.2fh (critical path %.2fh), total cost $%.4f (on-demand $%.4f → %.1f%% savings)\n",
		float64(res.Completion), float64(cp), res.TotalCost, odCost, 100*(1-res.TotalCost/odCost))
}
