// Failover demonstrates the multi-region fleet controller: a
// persistent one-hour job is supervised across several simulated
// regions, each with its own price trace, and the job's home region is
// hit with a correlated region-wide outage mid-run. The controller's
// circuit breaker trips, the job's checkpoint migrates, and the work
// finishes on a sibling's spot market — cheaper than the §3.2
// "default to on-demand" playbook the paper's single-region client is
// limited to.
//
// Everything is deterministic: rerunning with the same -seed and
// -rate reproduces the identical failover schedule, byte for byte.
package main

import (
	"flag"
	"fmt"
	"log"

	spotbid "repro"
)

func main() {
	var (
		regions = flag.Int("regions", 3, "fleet size (regions with independent price traces)")
		rate    = flag.Float64("rate", 1.0, "home region's per-slot region-outage probability")
		seed    = flag.Int64("seed", 7, "trace and fault seed")
	)
	flag.Parse()

	const typ = spotbid.R3XLarge
	const historySlots = 61 * 288 // two months of 5-minute slots

	members := make([]spotbid.FleetMember, *regions)
	for i := range members {
		tr, err := spotbid.GenerateTrace(typ, spotbid.GenOptions{Days: 63, Seed: *seed + int64(i)*4099})
		if err != nil {
			log.Fatal(err)
		}
		region, err := spotbid.NewRegion(tr)
		if err != nil {
			log.Fatal(err)
		}
		c, err := spotbid.NewClient(region)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 && *rate > 0 {
			// The home region goes down shortly after the job launches.
			inj, err := spotbid.NewChaos(spotbid.ChaosConfig{
				Seed:              *seed*31 + 1,
				RegionOutageRate:  *rate,
				RegionOutageAfter: historySlots + 10,
				RegionOutageSlots: 288,
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := inj.Arm(region, c.Volume); err != nil {
				log.Fatal(err)
			}
		}
		members[i] = spotbid.FleetMember{ID: fmt.Sprintf("region-%d", i), Region: region, Client: c}
	}

	ctl, err := spotbid.NewFleet(spotbid.FleetConfig{MigrationPenalty: spotbid.Seconds(60)}, members...)
	if err != nil {
		log.Fatal(err)
	}
	if err := ctl.Skip(historySlots); err != nil {
		log.Fatal(err)
	}
	spec := spotbid.JobSpec{ID: "demo", Type: typ, Exec: 1, Recovery: spotbid.Seconds(30)}
	rep, err := ctl.RunPersistent(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fleet of %d regions, home outage rate %.2f, seed %d\n\n", *regions, *rate, *seed)
	fmt.Println("failover schedule:")
	fmt.Print(rep.Schedule())
	fmt.Println("\nlegs:")
	for i, leg := range rep.Legs {
		status := "completed"
		if leg.Aborted != "" {
			status = "aborted: " + leg.Aborted
		}
		fmt.Printf("  %d. %-10s %-11s cost $%.4f  run %.2fh  %s\n",
			i+1, leg.Member, leg.Strategy, leg.Report.Outcome.Cost,
			float64(leg.Report.Outcome.RunTime), status)
	}
	fmt.Printf("\ncompleted=%v migrations=%d escalated=%v fleet bill $%.4f\n",
		rep.Outcome.Completed, rep.Migrations, rep.Escalated, rep.FleetCost)

	// The §3.2 alternative: the whole job on-demand in the home region.
	od, err := spotbid.LookupInstance(typ)
	if err != nil {
		log.Fatal(err)
	}
	odCost := od.OnDemand * float64(spec.Exec)
	fmt.Printf("all-on-demand would bill $%.4f — fleet saves %.1f%%\n",
		odCost, 100*(1-rep.FleetCost/odCost))
}
