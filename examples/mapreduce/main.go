// Mapreduce reruns the paper's §7.2 experiment: a word-count
// MapReduce job planned with Eq. 20 (one-time master bid + persistent
// slave bids, minimum feasible worker count) and executed on the
// simulated spot market, compared against the same cluster on
// on-demand instances.
package main

import (
	"fmt"
	"log"
	"strings"

	spotbid "repro"
)

const historySlots = 61 * 288

func main() {
	// The workload: a synthetic web-crawl-like corpus, ~2
	// instance-hours of map work at 7500 words/hour.
	corpus, err := spotbid.GenerateCorpus(60, 250, 7)
	if err != nil {
		log.Fatal(err)
	}
	spec := spotbid.MapReduceSpec{
		MasterType:   spotbid.M3XLarge, // cheap coordinator
		SlaveType:    spotbid.C34XL,    // compute-optimized workers
		Corpus:       corpus,
		WordsPerHour: 7500,
		Recovery:     spotbid.Seconds(30),
		Overhead:     spotbid.Seconds(60),
	}

	// Spot arm: plan with Eq. 20 and run.
	cl := newClient(11)
	rep, err := cl.RunMapReduce(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan (Eq. 20): master %s one-time @ $%.4f; %d × %s persistent @ $%.4f\n",
		spec.MasterType, rep.Plan.Master.Price, rep.Plan.Workers, spec.SlaveType, rep.Plan.Slaves.Price)
	fmt.Printf("  predicted: completion %.2fh, cost $%.4f (on-demand $%.4f → %.1f%% savings)\n\n",
		float64(rep.Plan.Completion), rep.Plan.TotalCost, rep.Plan.OnDemandCost, 100*rep.Plan.Savings())

	if !rep.Result.Completed {
		log.Fatalf("spot run did not complete (master outbid: %v)", rep.Result.MasterOutbid)
	}
	fmt.Printf("spot run:      completion %.2fh, cost $%.4f (master $%.4f + slaves $%.4f), %d interruptions\n",
		float64(rep.Result.Completion), rep.Result.TotalCost,
		rep.Result.MasterCost, rep.Result.SlaveCost, rep.Result.Interruptions)

	// On-demand arm on the identical trace with the same cluster.
	od, err := newClient(11).RunMapReduceOnDemand(spec, rep.Plan.Workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on-demand run: completion %.2fh, cost $%.4f\n\n",
		float64(od.Completion), od.TotalCost)
	fmt.Printf("savings %.1f%%, slowdown %.1f%% — the paper reports 92.6%% / 14.9%%\n\n",
		100*(1-rep.Result.TotalCost/od.TotalCost),
		100*(float64(rep.Result.Completion)/float64(od.Completion)-1))

	// The functional output: the distributed count equals a
	// sequential count, interruptions notwithstanding.
	oracle := spotbid.CountWords(corpus.Docs)
	top := spotbid.TopWords(rep.Result.Counts, 8)
	fmt.Printf("top words: %s\n", strings.Join(top, ", "))
	for _, w := range top {
		if rep.Result.Counts[w] != oracle[w] {
			log.Fatalf("count mismatch for %q: %d vs %d", w, rep.Result.Counts[w], oracle[w])
		}
	}
	fmt.Println("distributed counts verified against the sequential oracle ✓")
}

func newClient(seed int64) *spotbid.Client {
	master, err := spotbid.GenerateTrace(spotbid.M3XLarge, spotbid.GenOptions{Days: 63, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	slave, err := spotbid.GenerateTrace(spotbid.C34XL, spotbid.GenOptions{Days: 63, Seed: seed + 1})
	if err != nil {
		log.Fatal(err)
	}
	region, err := spotbid.NewRegion(master, slave)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := spotbid.NewClient(region)
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.Skip(historySlots); err != nil {
		log.Fatal(err)
	}
	return cl
}
