package spotbid_test

// The benchmark harness: one benchmark per paper table/figure (each
// regenerates the corresponding experiment end to end — see
// EXPERIMENTS.md for the paper-vs-measured record) plus
// micro-benchmarks for the hot paths a production bidding client
// would exercise (bid optimization against a two-month ECDF, provider
// price setting, trace generation).
//
// Figure/table benchmarks use Runs=2 per iteration to keep -bench
// wall time sane; the committed experiment numbers come from
// cmd/experiments -runs 10.

import (
	"math/rand"
	"testing"

	spotbid "repro"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
)

func benchOpts(i int) experiments.Opts {
	return experiments.Opts{Seed: int64(i) + 1, Runs: 2, Days: 63}
}

// coldMemo clears the package-level trace generation cache before the
// timed loop. The figure/table benchmarks reuse the same seeds
// (benchOpts), so without this each benchmark's first iterations run
// against whatever traces an earlier benchmark happened to cache —
// the measured number would depend on benchmark order. Starting cold
// makes every benchmark self-contained: it warms its own cache in
// iteration 0 and steady-states thereafter.
func coldMemo(b *testing.B) {
	b.Helper()
	trace.ResetMemo()
	b.ResetTimer()
}

func BenchmarkFigure3(b *testing.B) {
	b.ReportAllocs()
	coldMemo(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	b.ReportAllocs()
	coldMemo(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Instrumented is BenchmarkTable3 with a live metrics
// registry installed; the delta against BenchmarkTable3 is the
// observability layer's end-to-end overhead, budgeted at < 5%
// (measured precisely by `make bench-json` → BENCH_obs.json).
func BenchmarkTable3Instrumented(b *testing.B) {
	b.ReportAllocs()
	coldMemo(b)
	for i := 0; i < b.N; i++ {
		o := benchOpts(i)
		o.Metrics = obs.New()
		if _, err := experiments.Table3(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	b.ReportAllocs()
	coldMemo(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	b.ReportAllocs()
	coldMemo(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	b.ReportAllocs()
	coldMemo(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4AndFigure7(b *testing.B) {
	b.ReportAllocs()
	coldMemo(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.MapReduceEval(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStability(b *testing.B) {
	b.ReportAllocs()
	coldMemo(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Stability(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations runs the five design-choice sweeps (β, t_r,
// stickiness, M, collective bidding).
func BenchmarkAblations(b *testing.B) {
	b.ReportAllocs()
	coldMemo(b)
	for i := 0; i < b.N; i++ {
		o := benchOpts(i)
		if _, err := experiments.AblationBeta(o); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.AblationRecovery(o); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.AblationDwell(o); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.AblationWorkers(o); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.AblationCollective(o); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.AblationBilling(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForecastEval runs the §5 forecasting-horizon check.
func BenchmarkForecastEval(b *testing.B) {
	b.ReportAllocs()
	coldMemo(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ForecastEval(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks -------------------------------------------------

// benchMarket builds the r3.xlarge market from a two-month ECDF once.
func benchMarket(b *testing.B) spotbid.Market {
	b.Helper()
	tr, err := spotbid.GenerateTrace(spotbid.R3XLarge, spotbid.GenOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	ecdf, err := tr.ECDF(0)
	if err != nil {
		b.Fatal(err)
	}
	return spotbid.Market{Price: ecdf, OnDemand: 0.35}
}

func BenchmarkOneTimeBid(b *testing.B) {
	m := benchMarket(b)
	job := spotbid.Job{Exec: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.OneTimeBid(job); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPersistentBid(b *testing.B) {
	m := benchMarket(b)
	job := spotbid.Job{Exec: 1, Recovery: spotbid.Seconds(30)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PersistentBid(job); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanMapReduce(b *testing.B) {
	m := benchMarket(b)
	job := spotbid.MapReduceJob{Exec: 2, Recovery: spotbid.Seconds(30), Overhead: spotbid.Seconds(60)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spotbid.PlanMapReduce(m, m, job); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProviderOptimalPrice(b *testing.B) {
	cal, err := spotbid.CalibrationFor(spotbid.R3XLarge)
	if err != nil {
		b.Fatal(err)
	}
	p := cal.Provider
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.OptimalPrice(float64(i%1000) + 0.5)
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	coldMemo(b)
	for i := 0; i < b.N; i++ {
		if _, err := spotbid.GenerateTrace(spotbid.R3XLarge, spotbid.GenOptions{Seed: int64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBestOfflinePrice(b *testing.B) {
	tr, err := spotbid.GenerateTrace(spotbid.R3XLarge, spotbid.GenOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.BestOfflinePrice(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWordCountRun(b *testing.B) {
	corpus, err := spotbid.GenerateCorpus(40, 250, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	coldMemo(b)
	for i := 0; i < b.N; i++ {
		master, err := spotbid.GenerateTrace(spotbid.R3XLarge, spotbid.GenOptions{Days: 3, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		slave, err := spotbid.GenerateTrace(spotbid.C34XL, spotbid.GenOptions{Days: 3, Seed: int64(i) + 2})
		if err != nil {
			b.Fatal(err)
		}
		region, err := spotbid.NewRegion(master, slave)
		if err != nil {
			b.Fatal(err)
		}
		_, err = spotbid.RunMapReduce(region, corpus, spotbid.MRConfig{
			Master:       spotbid.MRNodeSpec{Type: spotbid.R3XLarge, Bid: 0.06, Kind: spotbid.OneTime},
			Slave:        spotbid.MRNodeSpec{Type: spotbid.C34XL, Bid: 0.09, Kind: spotbid.Persistent},
			Workers:      4,
			Recovery:     spotbid.Seconds(30),
			Overhead:     spotbid.Seconds(60),
			WordsPerHour: 5000,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKSTwoSample(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 8784)
	ys := make([]float64, 8784)
	for i := range xs {
		xs[i] = r.NormFloat64()
		ys[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.KSTwoSample(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}
