// Package spotbid is a faithful reproduction of "How to Bid the
// Cloud" (Zheng, Joe-Wong, Tan, Chiang, Wang — SIGCOMM 2015): optimal
// bidding strategies for auction-priced cloud spot instances,
// together with the provider-side spot-price model the strategies are
// derived from and a complete simulated EC2 substrate to evaluate
// them on.
//
// The package is a facade: it re-exports the library's public surface
// so downstream users import one path. The implementation lives in
// the internal packages:
//
//   - internal/core      — the bidding strategies (Prop. 4/5, Eq. 19/20)
//   - internal/market    — the provider model (§4): price optimization,
//     queue dynamics, equilibrium price distribution
//   - internal/dist      — hand-rolled probability distributions
//   - internal/stats     — fitting, KS test, histograms
//   - internal/trace     — spot-price histories and the calibrated
//     synthetic generator
//   - internal/cloud     — the simulated EC2 region (spot + on-demand)
//   - internal/job       — single-instance job execution and billing
//   - internal/mapreduce — the master/slave MapReduce engine
//   - internal/client    — the Fig. 1 bidding client
//   - internal/strategy  — the pluggable bidding-strategy engine the
//     client delegates to (incumbents + contenders, one registry)
//   - internal/serve     — the degradation-aware bid-advisory control
//     plane (staleness tiers, admission control, audit ledger) behind
//     the cmd/spotbidd HTTP daemon
//   - internal/experiments — regeneration of every table and figure
//
// # Quickstart
//
//	history, _ := spotbid.GenerateTrace(spotbid.R3XLarge, spotbid.GenOptions{})
//	ecdf, _ := history.ECDF(0)
//	m := spotbid.Market{Price: ecdf, OnDemand: 0.35}
//	bid, _ := m.PersistentBid(spotbid.Job{Exec: 1, Recovery: spotbid.Seconds(30)})
//	fmt.Printf("bid $%.4f/h, expected cost $%.4f\n", bid.Price, bid.ExpectedCost)
//
// See the examples/ directory for runnable programs and DESIGN.md /
// EXPERIMENTS.md for the reproduction methodology.
package spotbid

import (
	"repro/internal/chaos"
	"repro/internal/checkpoint"
	"repro/internal/client"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/forecast"
	"repro/internal/instances"
	"repro/internal/invariant"
	"repro/internal/job"
	"repro/internal/lanes"
	"repro/internal/mapreduce"
	"repro/internal/market"
	"repro/internal/obs/event"
	"repro/internal/obs/tsdb"
	"repro/internal/retry"
	"repro/internal/serve"
	"repro/internal/strategy"
	"repro/internal/timeslot"
	"repro/internal/trace"
	"repro/internal/workflow"
)

// Time units (see internal/timeslot).
type (
	// Hours is a duration in hours, the paper's time unit.
	Hours = timeslot.Hours
	// Grid is a discrete slot grid.
	Grid = timeslot.Grid
)

// DefaultSlot is the five-minute pricing slot t_k.
const DefaultSlot = timeslot.DefaultSlot

// Seconds converts seconds to Hours (t_r = Seconds(30)).
func Seconds(s float64) Hours { return timeslot.Seconds(s) }

// NewGrid returns a slot grid with the given slot length.
func NewGrid(slot Hours) Grid { return timeslot.NewGrid(slot) }

// Probability distributions (see internal/dist).
type (
	// Dist is a univariate continuous distribution.
	Dist = dist.Dist
	// Pareto, Exponential, Uniform are the parametric families the
	// paper uses; Empirical is an ECDF built from a price history;
	// Mixture composes components.
	Pareto      = dist.Pareto
	Exponential = dist.Exponential
	Uniform     = dist.Uniform
	Empirical   = dist.Empirical
	Mixture     = dist.Mixture
)

// Distribution constructors.
var (
	NewPareto      = dist.NewPareto
	NewExponential = dist.NewExponential
	NewUniform     = dist.NewUniform
	NewEmpirical   = dist.NewEmpirical
	NewMixture     = dist.NewMixture
)

// The provider model (§4; see internal/market).
type (
	// Provider holds (π̲, π̄, β, θ).
	Provider = market.Provider
	// EquilibriumPriceDist is the spot-price distribution induced by
	// an arrival process (Prop. 2–3).
	EquilibriumPriceDist = market.EquilibriumPriceDist
	// MarketSimulator runs the full queue dynamics (Fig. 2).
	MarketSimulator = market.Simulator
)

// NewEquilibriumPriceDist builds the equilibrium price distribution.
var NewEquilibriumPriceDist = market.NewEquilibriumPriceDist

// The bidding strategies (§5–6; see internal/core).
type (
	// Market is a spot market seen by the bidder: F_π + π̄ + t_k.
	Market = core.Market
	// Job is a single-instance job (t_s, t_r).
	Job = core.Job
	// Bid is a bidding decision with its analytic predictions.
	Bid = core.Bid
	// MapReduceJob is the parallel job of §6.
	MapReduceJob = core.MapReduceJob
	// Plan is a complete master+slave bidding plan (Eq. 20).
	Plan = core.Plan
	// DeadlineJob is the §8 risk-averse variant: a hard deadline
	// with a bounded miss probability.
	DeadlineJob = core.DeadlineJob
)

// ErrInfeasible reports a job that no feasible bid can serve (Eq. 14).
var ErrInfeasible = core.ErrInfeasible

// Eq14Feasible is the closed-form satisfiability test of the Eq. 14
// interruptibility constraint below a bid ceiling; the serving layer
// uses it as the honest-refusal criterion.
var Eq14Feasible = core.Eq14Feasible

// PlanMapReduce solves the joint master/slave problem of Eq. 20.
var PlanMapReduce = core.PlanMapReduce

// MarketOption is one row of a cross-type market ranking.
type MarketOption = core.Option

// RankMarkets sorts candidate markets by a job's expected cost.
var RankMarkets = core.RankMarkets

// The instance catalog (Table 2; see internal/instances).
type (
	// InstanceType names an EC2 instance type.
	InstanceType = instances.Type
	// InstanceSpec is its size and on-demand price.
	InstanceSpec = instances.Spec
)

// The paper's instance types.
const (
	M1XLarge = instances.M1XLarge
	M3XLarge = instances.M3XLarge
	M32XL    = instances.M32XL
	R3XLarge = instances.R3XLarge
	R32XL    = instances.R32XL
	R34XL    = instances.R34XL
	C3XLarge = instances.C3XLarge
	C32XL    = instances.C32XL
	C34XL    = instances.C34XL
	C38XL    = instances.C38XL
)

// Catalog access.
var (
	LookupInstance = instances.Lookup
	AllInstances   = instances.All
)

// Spot-price histories (see internal/trace).
type (
	// Trace is a slot-regular price history.
	Trace = trace.Trace
	// GenOptions tunes the calibrated synthetic generator.
	GenOptions = trace.GenOptions
	// Calibration is a type's generative parameters.
	Calibration = trace.Calibration
	// TraceSummary is a descriptive digest of a price history.
	TraceSummary = trace.Summary
)

// Trace construction and generation.
var (
	NewTrace       = trace.New
	GenerateTrace  = trace.Generate
	ReadTraceCSV   = trace.ReadCSV
	CalibrationFor = trace.CalibrationFor
)

// The simulated cloud (see internal/cloud, internal/job,
// internal/checkpoint).
type (
	// Region is the simulated EC2 region.
	Region = cloud.Region
	// SpotRequest and Instance mirror the EC2 API objects.
	SpotRequest = cloud.SpotRequest
	Instance    = cloud.Instance
	// RequestKind is one-time vs persistent.
	RequestKind = cloud.RequestKind
	// JobSpec, JobOutcome, JobTracker run jobs against a region.
	JobSpec    = job.Spec
	JobOutcome = job.Outcome
	JobTracker = job.Tracker
	// Volume is the checkpoint store.
	Volume = checkpoint.Volume
)

// Request kinds.
const (
	OneTime    = cloud.OneTime
	Persistent = cloud.Persistent
)

// Cloud construction and job execution.
var (
	NewRegion      = cloud.NewRegion
	ErrEndOfTrace  = cloud.ErrEndOfTrace
	NewSpotJob     = job.NewSpotJob
	NewOnDemandJob = job.NewOnDemandJob
	RunJob         = job.Run
	NewVolume      = checkpoint.NewVolume
)

// MapReduce (see internal/mapreduce).
type (
	// Corpus is a document set; MRConfig and MRResult parameterize
	// and summarize an engine run.
	Corpus   = mapreduce.Corpus
	MRConfig = mapreduce.Config
	MRResult = mapreduce.Result
	// MRNodeSpec provisions a node role.
	MRNodeSpec = mapreduce.NodeSpec
	// Mapper and Reducer extend the engine beyond word count.
	Mapper  = mapreduce.Mapper
	Reducer = mapreduce.Reducer
	// WordCountJob is the canonical §7.2 job.
	WordCountJob = mapreduce.WordCount
)

// MapReduce helpers.
var (
	GenerateCorpus = mapreduce.GenerateCorpus
	RunMapReduce   = mapreduce.Run
	CountWords     = mapreduce.CountWords
	TopWords       = mapreduce.TopWords
)

// Billing modes (see internal/cloud/billing.go).
type BillingMode = cloud.BillingMode

// PerSlotBilling is the paper's continuous-limit model; HourlyBilling
// reproduces Amazon's 2014 instance-hour rules (partial hours free on
// provider termination).
const (
	PerSlotBilling = cloud.PerSlot
	HourlyBilling  = cloud.Hourly
)

// Price forecasting (the §5 alternative; see internal/forecast).
type (
	// Predictor forecasts future prices from a history window.
	Predictor = forecast.Predictor
	// NaivePredictor, SMAPredictor, EWMAPredictor, AR1Predictor are
	// the built-in models.
	NaivePredictor = forecast.Naive
	SMAPredictor   = forecast.SMA
	EWMAPredictor  = forecast.EWMA
	AR1Predictor   = forecast.AR1
	// ForecastErrors summarizes a rolling evaluation.
	ForecastErrors = forecast.Errors
)

// EvaluateForecast runs a rolling-origin forecast evaluation.
var EvaluateForecast = forecast.Evaluate

// DAG workflows (the §8 "task dependence" extension; see
// internal/workflow).
type (
	// WorkflowTask is one DAG node; Workflow the validated DAG;
	// WorkflowRunner executes it, bidding on each task only once its
	// dependencies complete; WorkflowResult summarizes the run.
	WorkflowTask   = workflow.Task
	Workflow       = workflow.Workflow
	WorkflowRunner = workflow.Runner
	WorkflowResult = workflow.Result
)

// NewWorkflow validates and builds a task DAG.
var NewWorkflow = workflow.New

// Fault injection (see internal/chaos) and the client's
// fault-handling policy (see internal/retry).
type (
	// ChaosConfig selects fault types and rates; ChaosInjector is the
	// seeded injector a Region and Volume are armed with; ChaosStats
	// counts injected faults.
	ChaosConfig   = chaos.Config
	ChaosInjector = chaos.Injector
	ChaosStats    = chaos.Stats
	// RetryPolicy is the client's capped-exponential-backoff budget
	// for transient API faults.
	RetryPolicy = retry.Policy
)

// Chaos and retry constructors.
var (
	NewChaos     = chaos.New
	UniformChaos = chaos.Uniform
	DefaultRetry = retry.Default
)

// Explicit fault schedules and the resilience verification subsystem
// (see internal/chaos and internal/invariant): FaultSchedule pins an
// exact fault incident list, NewFaultSchedule arms it RNG-free, and
// the invariant scenario/campaign types drive the runtime invariant
// checkers over enumerated schedules with shrinking.
type (
	// FaultAt is one scheduled fault episode; FaultSchedule an
	// explicit incident list; FaultScheduleInjector the deterministic
	// injector delivering exactly those faults.
	FaultAt               = chaos.FaultAt
	FaultKind             = chaos.FaultKind
	FaultSchedule         = chaos.Schedule
	FaultScheduleInjector = chaos.ScheduleInjector
	// InvariantViolation is one invariant breach; InvariantScenario
	// the fleet run the fault-schedule explorer perturbs;
	// InvariantGrid the schedule lattice; CampaignReport the audited
	// campaign summary.
	InvariantViolation = invariant.Violation
	InvariantScenario  = invariant.Scenario
	InvariantGrid      = invariant.Grid
	CampaignReport     = invariant.CampaignReport
)

// The schedulable fault kinds.
const (
	FaultAPI            = chaos.FaultAPI
	FaultRegionOutage   = chaos.FaultRegionOutage
	FaultCapacityOutage = chaos.FaultCapacityOutage
	FaultStaleHistory   = chaos.FaultStaleHistory
	FaultOutbidDelay    = chaos.FaultOutbidDelay
	FaultCheckpointFail = chaos.FaultCheckpointFail
)

// Resilience-verification constructors: the schedule injector, the
// per-run checker suite, the default schedule lattice, the shrinker,
// and the parallel campaign driver.
var (
	NewFaultSchedule     = chaos.NewSchedule
	NewInvariantSuite    = invariant.NewSuite
	DefaultInvariantGrid = invariant.DefaultGrid
	ShrinkFaultSchedule  = invariant.Shrink
	ResilienceCampaign   = experiments.ResilienceCampaign
)

// Transient and Permanent classify errors for the retry policy;
// IsTransient queries the classification.
var (
	Transient   = retry.Transient
	Permanent   = retry.Permanent
	IsTransient = retry.IsTransient
)

// The bidding client (Fig. 1; see internal/client).
type (
	// Client glues price monitor, bid calculator, and job monitor.
	Client = client.Client
	// Telemetry records the degradation a run absorbed (stale
	// estimates, retries, on-demand fallback).
	Telemetry = client.Telemetry
	// Report pairs analytic predictions with measured outcomes.
	Report = client.Report
	// MapReduceSpec and MapReduceReport are the parallel-job
	// equivalents.
	MapReduceSpec   = client.MapReduceSpec
	MapReduceReport = client.MapReduceReport
	// FallbackReport summarizes a one-time-with-on-demand-fallback
	// run (§3.2's completion-control playbook).
	FallbackReport = client.FallbackReport
)

// NewClient builds a client for a region.
var NewClient = client.New

// The struct-of-arrays lane batch engine (see internal/lanes):
// advances every (market, kind, tenant) lane of a simulated spot
// fleet in one cache-friendly pass over contiguous arrays, with
// per-lane RNG streams seeded by lane index so results are
// bit-identical at any GOMAXPROCS.
type (
	// LanesConfig sizes a fleet simulation; LanesEngine is the batch
	// engine; LanesReport the per-cohort summary with LanesRow rows.
	LanesConfig = lanes.Config
	LanesEngine = lanes.Engine
	LanesReport = lanes.Report
	LanesRow    = lanes.Row
)

// Lane engine constructors. NewLanes builds the engine and its
// live-window quote grid; RunLanesReference replays the same fleet on
// the legacy per-client machinery (byte-identical report, for
// verification and benchmarking).
var (
	NewLanes          = lanes.New
	RunLanesReference = lanes.RunReference
)

// The pluggable bidding-strategy engine (see internal/strategy): the
// Strategy interface the client delegates every bid decision to, the
// registered incumbents and contenders, and the registry. Run one with
// Client.RunStrategy.
type (
	// Strategy decides how a job is run; AdaptiveStrategy additionally
	// revises its decision mid-run (Reprice).
	Strategy         = strategy.Strategy
	AdaptiveStrategy = strategy.Adaptive
	// StrategyObservation is the market/job snapshot a strategy sees;
	// StrategyDecision its verdict; StrategyTranche one slice of a
	// split decision; StrategyInfo the registry metadata.
	StrategyObservation = strategy.Observation
	StrategyDecision    = strategy.Decision
	StrategyTranche     = strategy.Tranche
	StrategyInfo        = strategy.Info
	// The concrete strategies: the paper's Prop. 4 / Prop. 5 optima,
	// the empirical-percentile and fixed-bid baselines, the hindsight
	// oracle, the on-demand control, and the three contenders — a PID
	// price-tracking controller, a spot+on-demand portfolio splitter,
	// and an AutoSpotting-style opportunistic replacer.
	OneTimeStrategy     = strategy.OneTime
	PersistentStrategy  = strategy.Persistent
	PercentileStrategy  = strategy.Percentile
	FixedBidStrategy    = strategy.FixedBid
	BestOfflineStrategy = strategy.BestOffline
	OnDemandStrategy    = strategy.OnDemand
	PIDStrategy         = strategy.PID
	PortfolioStrategy   = strategy.Portfolio
	AutoSpotStrategy    = strategy.AutoSpot
)

// Strategy registry access: construct a registered strategy by name,
// list the league, look up metadata, register a custom contender.
var (
	NewStrategy      = strategy.New
	StrategyNames    = strategy.Names
	LookupStrategy   = strategy.Lookup
	RegisterStrategy = strategy.Register
)

// The strategy tournament (see internal/experiments): every registered
// strategy raced across the chaos grid, each cell audited by the
// invariant suite and replay-verified, ranked into a league table.
type (
	// ExperimentOpts parameterizes the experiment sweeps (seed, runs,
	// optional metrics registry and flight recorder).
	ExperimentOpts   = experiments.Opts
	TournamentResult = experiments.TournamentResult
	TournamentRow    = experiments.TournamentRow
	TournamentCell   = experiments.TournamentCell
)

// Tournament runs the strategy league.
var Tournament = experiments.Tournament

// The multi-region fleet controller (see internal/fleet): supervised
// clients across regions with circuit breakers, checkpoint migration,
// and cross-market failover.
type (
	// FleetController supervises one job across member regions.
	FleetController = fleet.Controller
	// FleetMember binds a region and its client under one ID.
	FleetMember = fleet.Member
	// FleetConfig tunes breaker thresholds and migration accounting.
	FleetConfig = fleet.Config
	// FleetReport is a fleet run: legs, failover schedule, merged outcome.
	FleetReport = fleet.Report
	// BreakerState is a member's circuit-breaker state.
	BreakerState = fleet.BreakerState
)

// Breaker states.
const (
	BreakerClosed   = fleet.Closed
	BreakerOpen     = fleet.Open
	BreakerHalfOpen = fleet.HalfOpen
)

// NewFleet builds a fleet controller over member regions.
var NewFleet = fleet.NewController

// ErrBreakerOpen aborts a member client's run when its breaker trips.
var ErrBreakerOpen = fleet.ErrBreakerOpen

// The deterministic flight recorder (see internal/obs/event):
// slot-indexed structured events with causal job spans, exportable as
// JSONL, Chrome trace-viewer JSON, or a plain-text timeline. Install
// with Client.SetTrace, Region.SetTrace, or FleetConfig.Trace.
type (
	// TraceRecorder is the flight recorder; a nil *TraceRecorder is
	// the no-op default.
	TraceRecorder = event.Recorder
	// TraceConfig tunes capacity and bounded/unbounded mode.
	TraceConfig = event.Config
	// TraceEvent is one recorded event; TraceSpan one causal-tree node.
	TraceEvent = event.Event
	TraceSpan  = event.Span
	// TraceEventKind labels event types (TraceBidSubmitted, ...).
	TraceEventKind = event.Kind
)

// NewRecorder builds a flight recorder (bounded ring buffer by
// default; Unbounded for full experiment exports).
var NewRecorder = event.NewRecorder

// Flight-recorder event kinds.
const (
	TraceBidSubmitted      = event.BidSubmitted
	TraceBidAccepted       = event.BidAccepted
	TraceOutBid            = event.OutBid
	TraceOutBidDelayed     = event.OutBidDelayed
	TraceLaunchBlocked     = event.LaunchBlocked
	TracePriceSet          = event.PriceSet
	TraceRetryAttempt      = event.RetryAttempt
	TraceFallbackOnDemand  = event.FallbackOnDemand
	TraceBreakerTransition = event.BreakerTransition
	TraceDrain             = event.Drain
	TraceMigrate           = event.Migrate
	TraceCheckpointExport  = event.CheckpointExport
	TraceCheckpointImport  = event.CheckpointImport
	TraceLegComplete       = event.LegComplete
)

// The bid-advisory control plane (see internal/serve): versioned
// quote tables over the windowed ECDF, a three-tier staleness ladder
// (fresh → stale-with-age → refuse; Eq. 14 infeasibility refused in
// every tier), priority-class admission control with deadline-aware
// shedding, and an auditable per-request outcome ledger. cmd/spotbidd
// is the HTTP daemon; the chaos drill in ServeDrillConfig proves the
// degradation behavior deterministically.
type (
	// ServeServer is the quote-serving control plane.
	ServeServer = serve.Server
	// ServeConfig tunes markets, ladder thresholds, grids, admission.
	ServeConfig = serve.Config
	// ServeKey identifies one (region, instance type) market.
	ServeKey = serve.Key
	// ServeTier is a staleness ladder tier.
	ServeTier = serve.Tier
	// ServeQuoteRequest / ServeQuoteResponse are the quote API.
	ServeQuoteRequest  = serve.QuoteRequest
	ServeQuoteResponse = serve.QuoteResponse
	// ServeOutcome classifies how a request exited.
	ServeOutcome = serve.Outcome
	// ServeClass is an admission priority class.
	ServeClass = serve.Class
	// ServeDrillConfig / ServeDrillResult run the serving chaos drill.
	ServeDrillConfig = serve.DrillConfig
	ServeDrillResult = serve.DrillResult
)

// NewServeServer builds a quote-serving control plane; NewServeHandler
// wraps it in the /v1/quote + health HTTP API; ServeDrill runs the
// deterministic degradation drill.
var (
	NewServeServer  = serve.New
	NewServeHandler = serve.NewHandler
	ServeDrill      = serve.Drill
)

// Staleness ladder tiers and admission classes.
const (
	ServeTierFresh  = serve.TierFresh
	ServeTierStale  = serve.TierStale
	ServeTierRefuse = serve.TierRefuse

	ServeClassInteractive = serve.ClassInteractive
	ServeClassStandard    = serve.ClassStandard
	ServeClassBatch       = serve.ClassBatch
)

// The slot-indexed time-series store (see internal/obs/tsdb):
// Gorilla-style compressed series keyed by name + labels, a scraper
// that snapshots the metrics registry every K slots, and a
// multi-window burn-rate SLO engine. Everything is keyed by
// simulation slot, never the wall clock, so two runs of the same seed
// dump byte-identical series. cmd/spotbidtop renders a DB (live,
// replayed, or attached) as a terminal dashboard.
type (
	// TSDB is the in-process time-series store.
	TSDB = tsdb.DB
	// TSDBConfig tunes per-series retention.
	TSDBConfig = tsdb.Config
	// TSDBHandle is a cached series reference for hot append paths.
	TSDBHandle = tsdb.Handle
	// TSDBPoint is one (slot, value) sample; TSDBSeries one decoded
	// series as returned by queries and dumps.
	TSDBPoint  = tsdb.Point
	TSDBSeries = tsdb.SeriesData
	// TSDBLabels / TSDBLabel name a series beyond its metric name.
	TSDBLabels = tsdb.Labels
	TSDBLabel  = tsdb.Label
	// TSDBScraper snapshots a registry + derived sources into a DB.
	TSDBScraper      = tsdb.Scraper
	TSDBScrapeConfig = tsdb.ScrapeConfig
	// SLOSpec declares an objective; SLOBurnRule one multi-window
	// burn-rate condition; SLOSelector names the counter series.
	SLOSpec     = tsdb.SLO
	SLOBurnRule = tsdb.BurnRule
	SLOSelector = tsdb.Selector
	// SLOEngine evaluates SLOs; SLOAlert is one fire/resolve
	// transition.
	SLOEngine = tsdb.Engine
	SLOAlert  = tsdb.Alert
)

// NewTSDB builds a time-series store; NewTSDBScraper a registry
// scraper over it; NewSLOEngine a burn-rate evaluator; TSDBLabelSet
// a label list from key/value pairs.
var (
	NewTSDB        = tsdb.New
	NewTSDBScraper = tsdb.NewScraper
	NewSLOEngine   = tsdb.NewEngine
	TSDBLabelSet   = tsdb.L
)
