package spotbid_test

import (
	"bytes"
	"math"
	"testing"

	spotbid "repro"
)

// TestFacadeEndToEnd drives the whole public surface the way the
// README's quickstart does: generate a history, estimate the market,
// compute every bid kind, then run a job and a MapReduce plan on the
// simulated cloud.
func TestFacadeEndToEnd(t *testing.T) {
	history, err := spotbid.GenerateTrace(spotbid.R3XLarge, spotbid.GenOptions{Days: 63, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if history.Len() != 63*288 {
		t.Fatalf("history length %d", history.Len())
	}

	// CSV round trip through the facade.
	var buf bytes.Buffer
	if err := history.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := spotbid.ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != history.Len() {
		t.Fatal("CSV round trip lost data")
	}

	spec, err := spotbid.LookupInstance(spotbid.R3XLarge)
	if err != nil {
		t.Fatal(err)
	}
	ecdf, err := history.ECDF(0)
	if err != nil {
		t.Fatal(err)
	}
	m := spotbid.Market{Price: ecdf, OnDemand: spec.OnDemand}

	oneTime, err := m.OneTimeBid(spotbid.Job{Exec: 1})
	if err != nil {
		t.Fatal(err)
	}
	persistent, err := m.PersistentBid(spotbid.Job{Exec: 1, Recovery: spotbid.Seconds(30)})
	if err != nil {
		t.Fatal(err)
	}
	if persistent.Price > oneTime.Price {
		t.Errorf("persistent bid %v above one-time %v", persistent.Price, oneTime.Price)
	}
	if oneTime.Savings() < 0.8 || persistent.Savings() < 0.8 {
		t.Errorf("savings %v / %v below the paper's headline", oneTime.Savings(), persistent.Savings())
	}

	deadline, err := m.DeadlineBid(spotbid.DeadlineJob{
		Job:      spotbid.Job{Exec: 1, Recovery: spotbid.Seconds(30)},
		Deadline: 2,
		MissProb: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if deadline.Price < persistent.Price-1e-12 {
		t.Error("deadline bid below the unconstrained optimum")
	}

	plan, err := spotbid.PlanMapReduce(m, m, spotbid.MapReduceJob{
		Exec: 2, Recovery: spotbid.Seconds(30), Overhead: spotbid.Seconds(60),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Workers < 2 || plan.Savings() < 0.8 {
		t.Errorf("plan: M=%d savings=%v", plan.Workers, plan.Savings())
	}

	// Run a job end to end via the client.
	region, err := spotbid.NewRegion(history)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := spotbid.NewClient(region)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Skip(61 * 288); err != nil {
		t.Fatal(err)
	}
	rep, err := cl.RunPersistent(spotbid.JobSpec{
		ID: "facade", Type: spotbid.R3XLarge, Exec: 1, Recovery: spotbid.Seconds(30),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Outcome.Completed {
		t.Fatal("job did not complete")
	}
	if rep.Outcome.Cost > 0.2*spec.OnDemand {
		t.Errorf("measured cost %v not at deep discount", rep.Outcome.Cost)
	}
}

// TestFacadeWordCount runs the MapReduce engine through the facade
// and verifies the functional output.
func TestFacadeWordCount(t *testing.T) {
	corpus, err := spotbid.GenerateCorpus(20, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	master, err := spotbid.GenerateTrace(spotbid.R3XLarge, spotbid.GenOptions{Days: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	slave, err := spotbid.GenerateTrace(spotbid.C34XL, spotbid.GenOptions{Days: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	region, err := spotbid.NewRegion(master, slave)
	if err != nil {
		t.Fatal(err)
	}
	res, err := spotbid.RunMapReduce(region, corpus, spotbid.MRConfig{
		Master:       spotbid.MRNodeSpec{Type: spotbid.R3XLarge, Bid: 0.3, Kind: spotbid.OneTime},
		Slave:        spotbid.MRNodeSpec{Type: spotbid.C34XL, Bid: 0.4, Kind: spotbid.Persistent},
		Workers:      4,
		Recovery:     spotbid.Seconds(30),
		WordsPerHour: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("word count did not complete")
	}
	oracle := spotbid.CountWords(corpus.Docs)
	for _, w := range spotbid.TopWords(res.Counts, 5) {
		if res.Counts[w] != oracle[w] {
			t.Errorf("count for %q: %d vs oracle %d", w, res.Counts[w], oracle[w])
		}
	}
}

// TestFacadeProviderModel checks the provider-side exports.
func TestFacadeProviderModel(t *testing.T) {
	cal, err := spotbid.CalibrationFor(spotbid.R3XLarge)
	if err != nil {
		t.Fatal(err)
	}
	p := cal.Provider
	if got := p.OptimalPrice(50); got <= p.PMin || got >= p.POnDemand/2 {
		t.Errorf("optimal price %v out of the theoretical band", got)
	}
	arrival, err := spotbid.NewPareto(5, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := spotbid.NewEquilibriumPriceDist(p, arrival)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(eq.Mean()) {
		t.Error("equilibrium mean NaN")
	}
}

// TestFacadeLanes drives the struct-of-arrays lane engine through the
// facade: a small fleet, run to the end of the trace, cross-checked
// against the legacy-machinery reference replay.
func TestFacadeLanes(t *testing.T) {
	cfg := spotbid.LanesConfig{
		Types:      []spotbid.InstanceType{spotbid.R3XLarge},
		Lanes:      16,
		Days:       3,
		Seed:       5,
		Exec:       10,
		Recovery:   spotbid.Seconds(30),
		Window:     24,
		QuoteEvery: 48,
	}
	e, err := spotbid.NewLanes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Lanes != cfg.Lanes {
		t.Fatalf("report covers %d lanes, want %d", rep.Total.Lanes, cfg.Lanes)
	}
	ref, err := spotbid.RunLanesReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Render() != rep.Render() {
		t.Fatalf("lane engine and reference replay disagree:\n%s\nvs\n%s", rep.Render(), ref.Render())
	}
}
